//! Queuing resources used by the full-system model.
//!
//! Two service disciplines cover everything DMX needs:
//!
//! * [`FifoServer`] — `k` identical servers with run-to-completion
//!   service (PCIe link slots, DMA engines, accelerator kernels,
//!   per-accelerator DRX engines).
//! * [`PsPool`] — generalized processor sharing with a per-job
//!   parallelism cap (the host CPU's core pool running data
//!   restructuring, and shared DRX devices in the Integrated /
//!   Standalone placements). The cap models the limited thread
//!   scalability of cache-thrashing streaming kernels that the paper's
//!   Fig. 5 characterization shows.

use crate::time::Time;
use std::cell::RefCell;

/// A bank of `k` identical FIFO servers with deterministic service times.
///
/// Because service times are known at submission and there is no
/// preemption, the completion time of a job is fully determined when it
/// is submitted: it starts on the earliest-free server. This lets callers
/// schedule a single completion event per job.
///
/// ```
/// use dmx_sim::{FifoServer, Time};
/// let mut s = FifoServer::new(1);
/// let a = s.submit(Time::ZERO, Time::from_ns(10));
/// let b = s.submit(Time::ZERO, Time::from_ns(5));
/// assert_eq!(a, Time::from_ns(10));
/// assert_eq!(b, Time::from_ns(15)); // queued behind `a`
/// ```
#[derive(Debug, Clone)]
pub struct FifoServer {
    free_at: Vec<Time>,
    busy: Time,
    jobs: u64,
    waited: Time,
}

impl FifoServer {
    /// Creates a bank of `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "server bank must have at least one server");
        FifoServer {
            free_at: vec![Time::ZERO; servers],
            busy: Time::ZERO,
            jobs: 0,
            waited: Time::ZERO,
        }
    }

    /// Number of servers in the bank.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Submits a job at `now` needing `service` time on one server and
    /// returns its completion time.
    pub fn submit(&mut self, now: Time, service: Time) -> Time {
        let slot = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("submit on an empty server bank: construct it with at least one server");
        let start = self.free_at[slot].max(now);
        let done = start + service;
        self.free_at[slot] = done;
        self.busy += service;
        self.waited += start - now;
        self.jobs += 1;
        done
    }

    /// Earliest time at which some server is free.
    pub fn next_free(&self) -> Time {
        self.free_at.iter().copied().min().unwrap_or(Time::ZERO)
    }

    /// Total service time accumulated across all servers.
    pub fn busy_time(&self) -> Time {
        self.busy
    }

    /// Number of jobs submitted.
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }

    /// Total time jobs spent waiting for a server.
    pub fn total_wait(&self) -> Time {
        self.waited
    }

    /// Mean utilization of the bank over `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: Time) -> f64 {
        assert!(!horizon.is_zero(), "horizon must be nonzero");
        self.busy.as_ps() as f64 / (horizon.as_ps() as f64 * self.free_at.len() as f64)
    }
}

/// Identifier of a job inside a [`PsPool`].
pub type PsJobId = u64;

#[derive(Debug, Clone)]
struct PsJob {
    id: PsJobId,
    /// Remaining work in core-picoseconds (time the job would still need
    /// on a single dedicated core).
    remaining: f64,
    /// Maximum number of cores this job can exploit.
    cap: f64,
}

/// Generalized processor sharing over `capacity` cores, with a per-job
/// parallelism cap (water-filling allocation).
///
/// The pool is passive: it never schedules events itself. The owner
/// drives it with this protocol:
///
/// 1. mutate ([`PsPool::insert`]) or observe a tick,
/// 2. call [`PsPool::advance`] to the current time,
/// 3. drain [`PsPool::take_finished`],
/// 4. ask [`PsPool::next_event`] and schedule a tick at that time,
///    tagged with [`PsPool::generation`]; stale ticks (mismatched
///    generation) must be ignored by the owner.
///
/// ```
/// use dmx_sim::{PsPool, Time};
/// let mut pool = PsPool::new(16.0);
/// pool.insert(Time::ZERO, 1, Time::from_us(16), 4.0);
/// // alone, the job runs at its cap of 4 cores: 16us / 4 = 4us
/// assert_eq!(pool.next_event(Time::ZERO), Some(Time::from_us(4)));
/// ```
#[derive(Debug, Clone)]
pub struct PsPool {
    capacity: f64,
    jobs: Vec<PsJob>,
    last: Time,
    generation: u64,
    finished: Vec<PsJobId>,
    /// Read cursor into `finished` for [`PsPool::pop_finished`].
    finished_head: usize,
    /// Reusable water-fill buffers so steady-state advance/next_event
    /// cycles allocate nothing.
    scratch: RefCell<PsScratch>,
    busy_core_ps: f64,
    jobs_completed: u64,
}

#[derive(Debug, Clone, Default)]
struct PsScratch {
    /// Whether `rates` matches the current job set. Rates are a pure
    /// function of (capacity, per-job caps), so they stay valid until a
    /// job joins or retires — advancing time alone never changes them.
    valid: bool,
    caps: Vec<f64>,
    order: Vec<usize>,
    rates: Vec<f64>,
}

impl PsPool {
    /// Creates a pool with `capacity` cores (may be fractional).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "pool capacity must be positive"
        );
        PsPool {
            capacity,
            jobs: Vec::new(),
            last: Time::ZERO,
            generation: 0,
            finished: Vec::new(),
            finished_head: 0,
            scratch: RefCell::new(PsScratch::default()),
            busy_core_ps: 0.0,
            jobs_completed: 0,
        }
    }

    /// Total core capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Current generation; bumped on every state change so that stale
    /// scheduled ticks can be detected.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of jobs currently in service.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of jobs that have completed.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    /// Integral of allocated cores over time, in core-seconds.
    pub fn busy_core_secs(&self) -> f64 {
        self.busy_core_ps / 1e12
    }

    /// Water-filling rate allocation into the shared scratch: every job
    /// gets `min(cap, fair share)` cores where the shares of uncapped
    /// jobs are raised until capacity is exhausted. After this returns,
    /// `scratch.rates[i]` is the allocation of `jobs[i]`.
    fn fill_rates(&self, s: &mut PsScratch) {
        if s.valid {
            return;
        }
        s.caps.clear();
        s.caps.extend(self.jobs.iter().map(|j| j.cap));
        let (caps, order, rates) = (&s.caps, &mut s.order, &mut s.rates);
        water_fill_into(self.capacity, caps, order, rates);
        s.valid = true;
    }

    /// Advances internal accounting to `now`, depleting remaining work at
    /// the current allocation and marking finished jobs.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the last advance.
    pub fn advance(&mut self, now: Time) {
        assert!(now >= self.last, "PsPool advanced backwards");
        let dt = (now - self.last).as_ps() as f64;
        self.last = now;
        if dt == 0.0 || self.jobs.is_empty() {
            return;
        }
        // Borrow the scratch buffers out of the cell while jobs are
        // mutated, then hand them back; nothing observes the cell in
        // between.
        let mut s = self.scratch.take();
        self.fill_rates(&mut s);
        for (job, rate) in self.jobs.iter_mut().zip(&s.rates) {
            job.remaining -= rate * dt;
            self.busy_core_ps += rate * dt;
        }
        *self.scratch.borrow_mut() = s;
        // A job is finished when less than one picosecond of dedicated
        // single-core time remains; completion events are rounded up to
        // whole picoseconds so this absorbs float error. Ids go straight
        // onto `finished` in the same order the old collect-then-extend
        // produced.
        let before = self.jobs.len();
        let finished = &mut self.finished;
        self.jobs.retain(|j| {
            if j.remaining < 1.0 {
                finished.push(j.id);
                false
            } else {
                true
            }
        });
        let retired = before - self.jobs.len();
        if retired > 0 {
            self.jobs_completed += retired as u64;
            self.generation += 1;
            self.scratch.get_mut().valid = false;
        }
    }

    /// Inserts a job with `work` single-core service demand and a
    /// parallelism cap of `cap` cores. The pool must already be advanced
    /// to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not strictly positive or `now` disagrees with
    /// the pool's internal clock.
    pub fn insert(&mut self, now: Time, id: PsJobId, work: Time, cap: f64) {
        assert!(cap > 0.0, "parallelism cap must be positive");
        self.advance(now);
        let remaining = work.as_ps() as f64;
        if remaining < 1.0 {
            self.finished.push(id);
            self.jobs_completed += 1;
        } else {
            self.jobs.push(PsJob { id, remaining, cap });
            self.scratch.get_mut().valid = false;
        }
        self.generation += 1;
    }

    /// Drains the set of jobs that completed since the last call.
    pub fn take_finished(&mut self) -> Vec<PsJobId> {
        let out = self.finished.split_off(self.finished_head);
        self.finished.clear();
        self.finished_head = 0;
        out
    }

    /// Pops the next completed job in completion (FIFO) order, or `None`
    /// when drained. The allocation-free equivalent of
    /// [`PsPool::take_finished`]: the buffer is recycled once empty.
    pub fn pop_finished(&mut self) -> Option<PsJobId> {
        if self.finished_head < self.finished.len() {
            let id = self.finished[self.finished_head];
            self.finished_head += 1;
            Some(id)
        } else {
            self.finished.clear();
            self.finished_head = 0;
            None
        }
    }

    /// Absolute time of the next job completion given the current
    /// allocation, or `None` if the pool is idle. The caller should
    /// schedule a tick at this time tagged with [`PsPool::generation`].
    pub fn next_event(&self, now: Time) -> Option<Time> {
        if self.jobs.is_empty() {
            return None;
        }
        let mut s = self.scratch.borrow_mut();
        self.fill_rates(&mut s);
        let mut best = f64::INFINITY;
        for (job, rate) in self.jobs.iter().zip(&s.rates) {
            if *rate > 0.0 {
                best = best.min(job.remaining / rate);
            }
        }
        if !best.is_finite() {
            return None;
        }
        let dt = Time::from_ps(best.ceil().max(1.0) as u64);
        // `last` may momentarily trail `now` if the owner has not called
        // advance; completions can never be earlier than `now`.
        Some((self.last + dt).max(now))
    }
}

/// Water-filling allocation of `capacity` among jobs with caps.
///
/// Returns the per-job rates. Jobs with small caps get their cap; the
/// rest split the leftover evenly (never exceeding their own cap).
pub fn water_fill(capacity: f64, caps: &[f64]) -> Vec<f64> {
    let mut order = Vec::new();
    let mut rates = Vec::new();
    water_fill_into(capacity, caps, &mut order, &mut rates);
    rates
}

/// [`water_fill`] into caller-provided buffers (cleared and refilled),
/// so repeated allocations inside the event loop reuse capacity.
///
/// The sort is unstable, which cannot change the result: two jobs with
/// equal caps always receive equal rates (if the fair share exceeds the
/// tied cap once it exceeds it for both; if it does not, both freeze at
/// the identical fair share), so tie order is unobservable.
fn water_fill_into(capacity: f64, caps: &[f64], order: &mut Vec<usize>, rates: &mut Vec<f64>) {
    let n = caps.len();
    rates.clear();
    rates.resize(n, 0.0);
    if n == 0 {
        return;
    }
    order.clear();
    // Common case in steady state: every job has the same cap (or caps
    // already ascend), so skip the sort. The fill loop below is exactly
    // the same arithmetic either way. Otherwise, pools see only a
    // handful of distinct cap values (driver vs kernel vs restructure
    // classes), so an O(n·d) bucket pass beats a comparison sort; with
    // many distinct values, fall back to sorting. Order within an equal-
    // cap group is unobservable (equal caps always yield bitwise-equal
    // rates), so every branch produces the same result.
    if caps.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()) {
        order.extend(0..n);
    } else {
        let mut distinct: [f64; 8] = [0.0; 8];
        let mut nd = 0usize;
        for &c in caps {
            if !distinct[..nd].contains(&c) {
                if nd == distinct.len() {
                    nd = usize::MAX;
                    break;
                }
                distinct[nd] = c;
                nd += 1;
            }
        }
        if nd == usize::MAX {
            order.extend(0..n);
            order.sort_unstable_by(|&a, &b| caps[a].total_cmp(&caps[b]));
        } else {
            distinct[..nd].sort_unstable_by(|a, b| a.total_cmp(b));
            for &v in &distinct[..nd] {
                order.extend((0..n).filter(|&i| caps[i] == v));
            }
        }
    }
    let mut remaining_cap = capacity;
    let mut remaining_jobs = n as f64;
    for &i in order.iter() {
        let fair = remaining_cap / remaining_jobs;
        let r = caps[i].min(fair);
        rates[i] = r;
        remaining_cap -= r;
        remaining_jobs -= 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_server_queues() {
        let mut s = FifoServer::new(1);
        assert_eq!(s.submit(Time::ZERO, Time::from_ns(10)), Time::from_ns(10));
        assert_eq!(s.submit(Time::ZERO, Time::from_ns(10)), Time::from_ns(20));
        assert_eq!(
            s.submit(Time::from_ns(25), Time::from_ns(10)),
            Time::from_ns(35)
        );
        assert_eq!(s.busy_time(), Time::from_ns(30));
        assert_eq!(s.jobs_served(), 3);
        assert_eq!(s.total_wait(), Time::from_ns(10));
    }

    #[test]
    fn fifo_multi_server_parallel() {
        let mut s = FifoServer::new(2);
        assert_eq!(s.submit(Time::ZERO, Time::from_ns(10)), Time::from_ns(10));
        assert_eq!(s.submit(Time::ZERO, Time::from_ns(10)), Time::from_ns(10));
        assert_eq!(s.submit(Time::ZERO, Time::from_ns(10)), Time::from_ns(20));
        assert!((s.utilization(Time::from_ns(20)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn water_fill_respects_caps() {
        let rates = water_fill(16.0, &[4.0, 4.0]);
        assert_eq!(rates, vec![4.0, 4.0]);
        // 10 jobs capped at 4 on 16 cores: fair share 1.6 each
        let rates = water_fill(16.0, &[4.0; 10]);
        for r in rates {
            assert!((r - 1.6).abs() < 1e-9);
        }
        // mixed: cap 1 gets 1, the two big ones split the remaining 15
        let rates = water_fill(16.0, &[1.0, 100.0, 100.0]);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 7.5).abs() < 1e-9);
        assert!((rates[2] - 7.5).abs() < 1e-9);
    }

    #[test]
    fn water_fill_total_never_exceeds_capacity() {
        let caps = [0.5, 2.0, 3.0, 8.0, 8.0];
        let rates = water_fill(4.0, &caps);
        let total: f64 = rates.iter().sum();
        assert!(total <= 4.0 + 1e-9);
        for (r, c) in rates.iter().zip(&caps) {
            assert!(r <= c);
        }
    }

    #[test]
    fn ps_single_job_runs_at_cap() {
        let mut pool = PsPool::new(16.0);
        pool.insert(Time::ZERO, 7, Time::from_us(16), 4.0);
        let t = pool.next_event(Time::ZERO).unwrap();
        assert_eq!(t, Time::from_us(4));
        pool.advance(t);
        assert_eq!(pool.take_finished(), vec![7]);
        assert_eq!(pool.active_jobs(), 0);
    }

    #[test]
    fn ps_contention_slows_jobs() {
        // 8 jobs, cap 4, on 16 cores: each gets 2 cores -> 2x slower than
        // its solo rate.
        let mut pool = PsPool::new(16.0);
        for id in 0..8 {
            pool.insert(Time::ZERO, id, Time::from_us(16), 4.0);
        }
        let t = pool.next_event(Time::ZERO).unwrap();
        assert_eq!(t, Time::from_us(8));
        pool.advance(t);
        let mut done = pool.take_finished();
        done.sort_unstable();
        assert_eq!(done, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn ps_zero_work_finishes_immediately() {
        let mut pool = PsPool::new(1.0);
        pool.insert(Time::ZERO, 1, Time::ZERO, 1.0);
        assert_eq!(pool.take_finished(), vec![1]);
        assert_eq!(pool.next_event(Time::ZERO), None);
    }

    #[test]
    fn ps_generation_bumps_on_mutation() {
        let mut pool = PsPool::new(2.0);
        let g0 = pool.generation();
        pool.insert(Time::ZERO, 1, Time::from_ns(100), 1.0);
        assert!(pool.generation() > g0);
        let g1 = pool.generation();
        let t = pool.next_event(Time::ZERO).unwrap();
        pool.advance(t);
        assert!(pool.generation() > g1);
    }

    #[test]
    fn ps_staggered_arrivals() {
        // Job A alone for 5us at 1 core/1 cap on 1-core pool, then B
        // arrives; they share 0.5 cores each.
        let mut pool = PsPool::new(1.0);
        pool.insert(Time::ZERO, 1, Time::from_us(10), 1.0);
        pool.advance(Time::from_us(5));
        pool.insert(Time::from_us(5), 2, Time::from_us(10), 1.0);
        // A has 5us left at 0.5 cores -> finishes at 5 + 10 = 15us.
        let t = pool.next_event(Time::from_us(5)).unwrap();
        assert_eq!(t, Time::from_us(15));
        pool.advance(t);
        assert_eq!(pool.take_finished(), vec![1]);
        // B has 10 - 5 = 5us left, alone now -> 15 + 5 = 20us.
        let t2 = pool.next_event(t).unwrap();
        assert_eq!(t2, Time::from_us(20));
    }

    #[test]
    fn ps_busy_accounting() {
        let mut pool = PsPool::new(4.0);
        pool.insert(Time::ZERO, 1, Time::from_secs(1), 2.0);
        let t = pool.next_event(Time::ZERO).unwrap();
        pool.advance(t);
        assert!((pool.busy_core_secs() - 1.0).abs() < 1e-6);
        assert_eq!(pool.jobs_completed(), 1);
    }
}
