//! Small, deterministic PRNG for engine-internal randomness.
//!
//! Workload generators use the `rand` crate; the engine itself uses this
//! SplitMix64 so that simulations are reproducible from a single `u64`
//! seed with no external dependencies.

/// SplitMix64 pseudo-random generator.
///
/// ```
/// use dmx_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiplicative bounded sampling (Lemire); the tiny modulo bias
        // of the plain fallback would be irrelevant here, but this is
        // cheap and exact enough for simulation jitter.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Exponentially distributed float with the given mean.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_in_range() {
        let mut r = SplitMix64::new(4);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
            let v = r.next_range(5, 7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = SplitMix64::new(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean was {mean}");
    }
}
