//! Deterministic fast hashing for hot-path maps.
//!
//! The engine's per-event work is dominated by small integer-keyed map
//! lookups (request ids, job ids, unit ids). `std`'s default SipHash is
//! DoS-resistant but costs tens of cycles per lookup and seeds itself
//! randomly per process; simulation keys are internal counters, so
//! neither property buys anything here. [`FastMap`]/[`FastSet`] swap in
//! a fixed-seed multiply-xor hash (Fx-style): a few cycles per key, and
//! — unlike `RandomState` — identical layout in every process, which
//! keeps any accidental iteration-order dependence reproducible instead
//! of flaky.
//!
//! No map in the engine is allowed to *depend* on iteration order for
//! results (outputs must be byte-identical across `--threads`), so the
//! hasher choice is free to change; determinism is still enforced by
//! the serial-vs-parallel compare in `repro bench` and CI.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier from the golden ratio, the usual Fibonacci-hashing
/// constant; one multiply spreads dense counter keys across the table.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Multiply-xor hasher for small fixed-width keys (integers and small
/// tuples of them). Bytes fall back to an FNV-style fold, so composite
/// `Hash` impls still work — just pick [`FastMap`] only where keys are
/// cheap integers.
#[derive(Debug, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Finalizing xor-shift: hashbrown uses both the low bits (slot
        // index) and the high bits (control tag), so fold the product's
        // well-mixed high half back down.
        self.0 ^ (self.0 >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(K);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(K);
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.write_u64(n as u64);
        self.write_u64((n >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }
}

/// A `HashMap` with the fixed-seed [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` with the fixed-seed [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 3);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 10_000);
        for i in (0..10_000u64).step_by(2) {
            assert_eq!(m.remove(&i), Some(i * 3));
        }
        assert_eq!(m.len(), 5_000);
    }

    #[test]
    fn dense_counter_keys_spread() {
        // Dense ids must not collide into a few buckets: the hash of
        // consecutive keys should differ in their low bits.
        let mut low_bits = FastSet::default();
        for i in 0..64u64 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0x3F);
        }
        assert!(
            low_bits.len() > 32,
            "only {} distinct slots",
            low_bits.len()
        );
    }

    #[test]
    fn tuple_and_byte_keys_work() {
        let mut m: FastMap<(usize, usize), u32> = FastMap::default();
        m.insert((3, 5), 1);
        m.insert((5, 3), 2);
        assert_eq!(m.get(&(3, 5)), Some(&1));
        assert_eq!(m.get(&(5, 3)), Some(&2));
        let mut s: FastSet<String> = FastSet::default();
        s.insert("abc".into());
        assert!(s.contains("abc"));
        assert!(!s.contains("abd"));
    }

    #[test]
    fn deterministic_across_instances() {
        let h = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
