//! Time-ordered event queue with FIFO tie-breaking.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Process-global count of delivered events, accumulated as queues are
/// dropped (one atomic add per queue lifetime, nothing on the hot
/// path). The `repro bench` harness samples this for events/sec.
static DELIVERED: AtomicU64 = AtomicU64::new(0);

/// Total events delivered by all [`EventQueue`]s *dropped so far*,
/// process-wide. Live queues contribute only once they drop, so sample
/// this before and after a complete run.
pub fn events_delivered() -> u64 {
    DELIVERED.load(AtomicOrdering::Relaxed)
}

/// Process-global default for the no-progress watchdog, read once by
/// each [`EventQueue::new`]. 0 = disabled (the library default).
static DEFAULT_STALL_LIMIT: AtomicU64 = AtomicU64::new(0);

/// Sets the default no-progress watchdog limit for every
/// [`EventQueue`] created *after* this call: a queue that delivers
/// `limit` consecutive events without simulated time advancing panics
/// with a diagnostic dump of its pending events instead of spinning
/// forever. `0` disables the watchdog (the default). Test harnesses
/// arm this so a livelocked simulation aborts loudly; individual
/// queues can override via [`EventQueue::set_stall_limit`].
pub fn set_default_stall_limit(limit: u64) {
    DEFAULT_STALL_LIMIT.store(limit, AtomicOrdering::Relaxed);
}

/// An ordering key in the heap; the payload lives in the slab, so heap
/// sift operations move 24 bytes regardless of payload size.
#[derive(Clone, Copy)]
struct Entry {
    time: Time,
    seq: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest first,
    // and among equal times, lowest sequence number (insertion order).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The core of a discrete-event simulation: a clock plus a priority queue
/// of future events.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled, which keeps simulations deterministic.
///
/// Payloads are stored in a slab whose slots are recycled as events are
/// delivered, so a steady-state simulation reuses the same allocations
/// for its entire run; the binary heap orders small fixed-size keys.
///
/// ```
/// use dmx_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.schedule_after(Time::from_ns(10), "b");
/// q.schedule_at(Time::from_ns(5), "a");
/// assert_eq!(q.pop(), Some("a"));
/// assert_eq!(q.now(), Time::from_ns(5));
/// assert_eq!(q.pop(), Some("b"));
/// assert_eq!(q.now(), Time::from_ns(10));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    /// Payload storage; `None` slots are free and listed in `free`.
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    now: Time,
    seq: u64,
    popped: u64,
    /// No-progress watchdog: abort after this many consecutive
    /// deliveries at one instant. 0 = disabled.
    stall_limit: u64,
    stall_streak: u64,
}

impl<E> Drop for EventQueue<E> {
    fn drop(&mut self) {
        DELIVERED.fetch_add(self.popped, AtomicOrdering::Relaxed);
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Time::ZERO`]. The
    /// no-progress watchdog starts at the process-global default set by
    /// [`set_default_stall_limit`] (disabled unless a harness armed it).
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            now: Time::ZERO,
            seq: 0,
            popped: 0,
            stall_limit: DEFAULT_STALL_LIMIT.load(AtomicOrdering::Relaxed),
            stall_streak: 0,
        }
    }

    /// Overrides the no-progress watchdog for this queue: deliver
    /// `limit` consecutive events without the clock advancing and
    /// [`pop`](EventQueue::pop) panics with a dump of the pending
    /// queue. 0 disables.
    pub fn set_stall_limit(&mut self, limit: u64) {
        self.stall_limit = limit;
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`at < self.now()`); scheduling *at*
    /// the current instant is allowed.
    pub fn schedule_at(&mut self, at: Time, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(payload);
                s
            }
            None => {
                let s = u32::try_from(self.slab.len())
                    .expect("event queue slab overflow: more than u32::MAX events pending at once");
                self.slab.push(Some(payload));
                s
            }
        };
        self.heap.push(Entry {
            time: at,
            seq,
            slot,
        });
    }

    /// Schedules `payload` at `self.now() + delay`.
    pub fn schedule_after(&mut self, delay: Time, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty (the clock is
    /// left where it was).
    ///
    /// # Panics
    ///
    /// With the no-progress watchdog armed (see
    /// [`set_default_stall_limit`] / [`set_stall_limit`](EventQueue::set_stall_limit)),
    /// panics with a dump of the pending queue once `stall_limit`
    /// consecutive events are delivered without the clock advancing —
    /// the signature of a model livelock (e.g. two stages endlessly
    /// rescheduling each other at the same instant).
    pub fn pop(&mut self) -> Option<E>
    where
        E: std::fmt::Debug,
    {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        if self.stall_limit > 0 {
            if entry.time > self.now {
                self.stall_streak = 0;
            } else {
                self.stall_streak += 1;
                if self.stall_streak >= self.stall_limit {
                    self.no_progress_abort(entry);
                }
            }
        }
        self.now = entry.time;
        self.popped += 1;
        let payload = self.slab[entry.slot as usize]
            .take()
            .expect("event queue corruption: heap entry references an already-freed slot");
        self.free.push(entry.slot);
        Some(payload)
    }

    /// Watchdog trip: render the stuck instant and the head of the
    /// pending queue (delivery order), then panic. Cold — only reached
    /// on a genuine livelock.
    #[cold]
    fn no_progress_abort(&self, tripped: Entry) -> !
    where
        E: std::fmt::Debug,
    {
        const DUMP: usize = 32;
        let mut pending: Vec<Entry> = self.heap.iter().copied().collect();
        pending.sort_by(|a, b| a.time.cmp(&b.time).then(a.seq.cmp(&b.seq)));
        let mut dump = String::new();
        for e in std::iter::once(&tripped).chain(pending.iter()).take(DUMP) {
            dump.push_str(&format!(
                "  at {:?} seq {}: {:?}\n",
                e.time, e.seq, self.slab[e.slot as usize]
            ));
        }
        let omitted = (pending.len() + 1).saturating_sub(DUMP);
        panic!(
            "event queue made no progress: {} consecutive events delivered at {:?} \
             (stall limit {}); the simulation is livelocked. Next {} pending events \
             in delivery order ({} more omitted):\n{}",
            self.stall_streak,
            self.now,
            self.stall_limit,
            (pending.len() + 1).min(DUMP),
            omitted,
            dump
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(30), 3);
        q.schedule_at(Time::from_ns(10), 1);
        q.schedule_at(Time::from_ns(20), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn fifo_among_simultaneous() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Time::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(5), ());
        q.schedule_at(Time::from_ns(5), ());
        q.schedule_at(Time::from_ns(9), ());
        let mut last = Time::ZERO;
        while q.pop().is_some() {
            assert!(q.now() >= last);
            last = q.now();
        }
        assert_eq!(last, Time::from_ns(9));
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(10), ());
        q.pop();
        q.schedule_at(Time::from_ns(5), ());
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(10), 1);
        q.pop();
        q.schedule_at(Time::from_ns(10), 2);
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        // Steady state: one event in flight at a time. The slab must
        // not grow beyond the peak concurrency.
        for i in 0..1000u64 {
            q.schedule_at(Time::from_ns(i), i);
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.slab.len(), 1);
        // Peak of 3 pending -> 3 slots, reused forever after.
        for i in 0..3u64 {
            q.schedule_after(Time::from_ns(i + 1), i);
        }
        while q.pop().is_some() {}
        for i in 0..100u64 {
            q.schedule_after(Time::from_ns(i + 1), i);
            if i % 2 == 0 {
                q.pop();
            }
        }
        while q.pop().is_some() {}
        assert!(q.slab.len() <= 51, "slab grew to {}", q.slab.len());
    }

    #[test]
    fn delivered_counter_flushes_on_drop() {
        let before = events_delivered();
        {
            let mut q = EventQueue::new();
            for i in 0..5u64 {
                q.schedule_at(Time::from_ns(i), i);
            }
            while q.pop().is_some() {}
        }
        assert!(events_delivered() >= before + 5);
    }

    #[test]
    fn watchdog_off_by_default_tolerates_long_same_time_runs() {
        let mut q = EventQueue::new();
        q.set_stall_limit(0);
        for i in 0..10_000u64 {
            q.schedule_at(Time::from_ns(7), i);
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 10_000);
    }

    #[test]
    #[should_panic(expected = "event queue made no progress")]
    fn watchdog_trips_on_livelock() {
        let mut q = EventQueue::new();
        q.set_stall_limit(100);
        // A self-rescheduling zero-delay event: time never advances.
        q.schedule_at(Time::from_ns(1), 0u64);
        while let Some(e) = q.pop() {
            q.schedule_after(Time::ZERO, e + 1);
        }
    }

    #[test]
    fn watchdog_streak_resets_when_time_advances() {
        let mut q = EventQueue::new();
        q.set_stall_limit(50);
        // 40 same-instant events per step stays under the limit as
        // long as the clock moves between bursts.
        for step in 0..10u64 {
            for i in 0..40u64 {
                q.schedule_at(Time::from_ns(step + 1), i);
            }
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 400);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_after(Time::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
