//! Time-ordered event queue with FIFO tie-breaking.
//!
//! The queue is a two-level calendar: level 0 is a bucket array over a
//! sliding time window (each bucket a small vec kept sorted so the next
//! event pops from its back), level 1 is an unsorted overflow holding
//! everything at or beyond the window. Inserts and pops are O(1)
//! amortized; when the window drains, [`rebase`](EventQueue) picks a new
//! bucket width and count from the overflow population and refills. In
//! debug builds a shadow binary heap — the original implementation —
//! is popped in lockstep and every delivery is cross-checked against it.

use crate::time::Time;
use std::cmp::Ordering;
#[cfg(debug_assertions)]
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Process-global count of delivered events, accumulated as queues are
/// dropped (one atomic add per queue lifetime, nothing on the hot
/// path). The `repro bench` harness samples this for events/sec.
static DELIVERED: AtomicU64 = AtomicU64::new(0);

/// Total events delivered by all [`EventQueue`]s *dropped so far*,
/// process-wide. Live queues contribute only once they drop, so sample
/// this before and after a complete run.
pub fn events_delivered() -> u64 {
    DELIVERED.load(AtomicOrdering::Relaxed)
}

/// Process-global nanoseconds spent in simulation *setup* (system
/// construction before the event loop starts), accumulated by
/// [`record_setup_nanos`]. The `repro bench` harness samples this
/// around each timed experiment so events/sec can be computed over the
/// event-loop window alone.
static SETUP_NANOS: AtomicU64 = AtomicU64::new(0);

/// Total nanoseconds recorded as simulation setup so far, process-wide.
/// Sample before and after a run and subtract.
pub fn setup_nanos() -> u64 {
    SETUP_NANOS.load(AtomicOrdering::Relaxed)
}

/// Adds `nanos` to the process-global setup-time counter. Called by
/// simulator constructors (one add per system built, nothing on the
/// event hot path).
pub fn record_setup_nanos(nanos: u64) {
    SETUP_NANOS.fetch_add(nanos, AtomicOrdering::Relaxed);
}

/// Process-global default for the no-progress watchdog, read once by
/// each [`EventQueue::new`]. 0 = disabled (the library default).
static DEFAULT_STALL_LIMIT: AtomicU64 = AtomicU64::new(0);

/// Sets the default no-progress watchdog limit for every
/// [`EventQueue`] created *after* this call: a queue that delivers
/// `limit` consecutive events without simulated time advancing panics
/// with a diagnostic dump of its pending events instead of spinning
/// forever. `0` disables the watchdog (the default). Test harnesses
/// arm this so a livelocked simulation aborts loudly; individual
/// queues can override via [`EventQueue::set_stall_limit`].
pub fn set_default_stall_limit(limit: u64) {
    DEFAULT_STALL_LIMIT.store(limit, AtomicOrdering::Relaxed);
}

/// An ordering key; the payload lives in the slab, so calendar and heap
/// operations move 24 bytes regardless of payload size.
#[derive(Clone, Copy)]
struct Entry {
    time: Time,
    seq: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // Reverse ordering: earliest (time, seq) compares greatest. The
    // debug shadow heap is a max-heap, and a bucket vec sorted
    // ascending by this ordering holds its earliest event at the back,
    // where it pops without shifting the rest.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Fewest buckets the calendar window will use.
const MIN_BUCKETS: usize = 16;
/// Most buckets the calendar window will use; bounds rebase cost and
/// empty-bucket scans for any pending population.
const MAX_BUCKETS: usize = 4096;

/// The core of a discrete-event simulation: a clock plus a priority queue
/// of future events.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled, which keeps simulations deterministic.
///
/// Payloads are stored in a slab whose slots are recycled as events are
/// delivered, so a steady-state simulation reuses the same allocations
/// for its entire run; the two-level calendar orders small fixed-size
/// keys in O(1) amortized time per operation.
///
/// ```
/// use dmx_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.schedule_after(Time::from_ns(10), "b");
/// q.schedule_at(Time::from_ns(5), "a");
/// assert_eq!(q.pop(), Some("a"));
/// assert_eq!(q.now(), Time::from_ns(5));
/// assert_eq!(q.pop(), Some("b"));
/// assert_eq!(q.now(), Time::from_ns(10));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Level 0: buckets over `[base, window_end)`, each sorted ascending
    /// by the reversed `Entry` ordering (earliest event at the back).
    buckets: Vec<Vec<Entry>>,
    /// One bit per bucket: set while the bucket is non-empty.
    occupied: Vec<u64>,
    /// Window start in ps, aligned down to the bucket width.
    base: u64,
    /// log2 of the bucket width in ps.
    width_shift: u32,
    /// Exclusive end of the window in ps (may exceed `u64::MAX`).
    window_end: u128,
    /// All buckets below this index are empty.
    cur: usize,
    /// Level 1: unsorted events at or beyond `window_end`.
    overflow: Vec<Entry>,
    /// Minimum timestamp present in `overflow` (`u64::MAX` when empty).
    /// Exact: overflow only grows between rebases, and every rebase
    /// recomputes it.
    overflow_min: u64,
    /// Total events pending across both levels.
    pending: usize,
    /// Payload storage; `None` slots are free and listed in `free`.
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    now: Time,
    seq: u64,
    popped: u64,
    /// No-progress watchdog: abort after this many consecutive
    /// deliveries at one instant. 0 = disabled.
    stall_limit: u64,
    stall_streak: u64,
    /// Reference implementation, popped in lockstep with the calendar;
    /// any divergence in delivery order is a bug in the calendar.
    #[cfg(debug_assertions)]
    shadow: BinaryHeap<Entry>,
}

impl<E> Drop for EventQueue<E> {
    fn drop(&mut self) {
        DELIVERED.fetch_add(self.popped, AtomicOrdering::Relaxed);
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.pending)
            .field("processed", &self.popped)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Time::ZERO`]. The
    /// no-progress watchdog starts at the process-global default set by
    /// [`set_default_stall_limit`] (disabled unless a harness armed it).
    pub fn new() -> Self {
        // 16 one-microsecond buckets to start; the first rebase adapts
        // both knobs to the actual event population.
        let width_shift = 20;
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: vec![0; MIN_BUCKETS.div_ceil(64)],
            base: 0,
            width_shift,
            window_end: (MIN_BUCKETS as u128) << width_shift,
            cur: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            pending: 0,
            slab: Vec::new(),
            free: Vec::new(),
            now: Time::ZERO,
            seq: 0,
            popped: 0,
            stall_limit: DEFAULT_STALL_LIMIT.load(AtomicOrdering::Relaxed),
            stall_streak: 0,
            #[cfg(debug_assertions)]
            shadow: BinaryHeap::new(),
        }
    }

    /// Overrides the no-progress watchdog for this queue: deliver
    /// `limit` consecutive events without the clock advancing and
    /// [`pop`](EventQueue::pop) panics with a dump of the pending
    /// queue. 0 disables.
    pub fn set_stall_limit(&mut self, limit: u64) {
        self.stall_limit = limit;
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`at < self.now()`); scheduling *at*
    /// the current instant is allowed.
    pub fn schedule_at(&mut self, at: Time, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(payload);
                s
            }
            None => {
                let s = u32::try_from(self.slab.len())
                    .expect("event queue slab overflow: more than u32::MAX events pending at once");
                self.slab.push(Some(payload));
                s
            }
        };
        self.push_entry(Entry {
            time: at,
            seq,
            slot,
        });
    }

    /// Schedules `payload` at `self.now() + delay`.
    pub fn schedule_after(&mut self, delay: Time, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        if self.pending == 0 {
            return None;
        }
        if let Some(idx) = self.next_occupied() {
            let b = &self.buckets[idx];
            return Some(b[b.len() - 1].time);
        }
        Some(Time::from_ps(self.overflow_min))
    }

    /// Inserts an ordering key into the calendar.
    fn push_entry(&mut self, e: Entry) {
        #[cfg(debug_assertions)]
        self.shadow.push(e);
        let t = e.time.as_ps();
        if (t as u128) < self.window_end {
            // Inserts never predate `base`: `schedule_at` rejects the
            // past, pops keep `now` at or above the window start.
            debug_assert!(t >= self.base);
            let idx = ((t - self.base) >> self.width_shift) as usize;
            let b = &mut self.buckets[idx];
            let pos = b.binary_search(&e).unwrap_err();
            b.insert(pos, e);
            self.occupied[idx >> 6] |= 1 << (idx & 63);
            // The cursor may already have passed this (then-empty)
            // bucket; pull it back so the event is not skipped.
            if idx < self.cur {
                self.cur = idx;
            }
        } else {
            self.overflow.push(e);
            if t < self.overflow_min {
                self.overflow_min = t;
            }
        }
        self.pending += 1;
    }

    /// Removes the earliest (time, seq) key.
    fn pop_entry(&mut self) -> Option<Entry> {
        if self.pending == 0 {
            return None;
        }
        loop {
            if let Some(idx) = self.next_occupied() {
                self.cur = idx;
                let b = &mut self.buckets[idx];
                let e = b.pop().expect("occupied bit set on an empty bucket");
                if b.is_empty() {
                    self.occupied[idx >> 6] &= !(1 << (idx & 63));
                }
                self.pending -= 1;
                #[cfg(debug_assertions)]
                {
                    let r = self
                        .shadow
                        .pop()
                        .expect("calendar has events the reference heap lacks");
                    debug_assert!(
                        r.time == e.time && r.seq == e.seq && r.slot == e.slot,
                        "calendar queue diverged from reference heap: \
                         calendar ({:?}, seq {}) vs heap ({:?}, seq {})",
                        e.time,
                        e.seq,
                        r.time,
                        r.seq,
                    );
                }
                return Some(e);
            }
            // Window drained but events remain: they are all in the
            // overflow. Slide the window forward over them.
            self.rebase();
        }
    }

    /// First non-empty bucket at or after the cursor, via the
    /// occupancy bitmap (word-at-a-time scan).
    fn next_occupied(&self) -> Option<usize> {
        let nb = self.buckets.len();
        let mut w = self.cur >> 6;
        if w >= self.occupied.len() {
            return None;
        }
        let mut bits = self.occupied[w] & (!0u64 << (self.cur & 63));
        loop {
            if bits != 0 {
                let idx = (w << 6) + bits.trailing_zeros() as usize;
                return (idx < nb).then_some(idx);
            }
            w += 1;
            if w >= self.occupied.len() {
                return None;
            }
            bits = self.occupied[w];
        }
    }

    /// Re-anchors the window at the earliest overflow event, re-sizing
    /// the bucket array and width to the overflow population, and moves
    /// every overflow event that now fits into its bucket. Cold: runs
    /// once per drained window, cost amortized over the events moved.
    #[cold]
    fn rebase(&mut self) {
        debug_assert!(!self.overflow.is_empty(), "rebase with an empty overflow");
        let m = self.overflow.len();
        let nb = (2 * m).next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        if nb != self.buckets.len() {
            self.buckets.resize_with(nb, Vec::new);
            self.occupied.resize(nb.div_ceil(64), 0);
        }
        self.occupied.fill(0);
        let omin = self.overflow_min;
        let omax = self
            .overflow
            .iter()
            .map(|e| e.time.as_ps())
            .max()
            .expect("nonempty");
        // Widen buckets until the whole overflow span fits the window;
        // terminates at shift <= 61 because nb >= 16. Clustered spans
        // leave the tail in the overflow for a later rebase.
        let mut shift = 0u32;
        let mut base = omin;
        while ((omax - base) >> shift) as usize >= nb {
            shift += 1;
            base = omin & !((1u64 << shift) - 1);
        }
        self.base = base;
        self.width_shift = shift;
        self.window_end = base as u128 + ((nb as u128) << shift);
        let mut remaining_min = u64::MAX;
        let mut min_idx = nb - 1;
        let mut i = 0;
        while i < self.overflow.len() {
            let t = self.overflow[i].time.as_ps();
            if (t as u128) < self.window_end {
                let e = self.overflow.swap_remove(i);
                let idx = ((t - base) >> shift) as usize;
                self.buckets[idx].push(e);
                self.occupied[idx >> 6] |= 1 << (idx & 63);
                min_idx = min_idx.min(idx);
            } else {
                remaining_min = remaining_min.min(t);
                i += 1;
            }
        }
        self.overflow_min = remaining_min;
        for idx in min_idx..nb {
            if self.buckets[idx].len() > 1 {
                self.buckets[idx].sort_unstable();
            }
        }
        self.cur = min_idx;
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty (the clock is
    /// left where it was).
    ///
    /// # Panics
    ///
    /// With the no-progress watchdog armed (see
    /// [`set_default_stall_limit`] / [`set_stall_limit`](EventQueue::set_stall_limit)),
    /// panics with a dump of the pending queue once `stall_limit`
    /// consecutive events are delivered without the clock advancing —
    /// the signature of a model livelock (e.g. two stages endlessly
    /// rescheduling each other at the same instant).
    pub fn pop(&mut self) -> Option<E>
    where
        E: std::fmt::Debug,
    {
        let entry = self.pop_entry()?;
        debug_assert!(entry.time >= self.now);
        if self.stall_limit > 0 {
            if entry.time > self.now {
                self.stall_streak = 0;
            } else {
                self.stall_streak += 1;
                if self.stall_streak >= self.stall_limit {
                    self.no_progress_abort(entry);
                }
            }
        }
        self.now = entry.time;
        self.popped += 1;
        let payload = self.slab[entry.slot as usize]
            .take()
            .expect("event queue corruption: calendar entry references an already-freed slot");
        self.free.push(entry.slot);
        Some(payload)
    }

    /// Watchdog trip: render the stuck instant and the head of the
    /// pending queue (delivery order), then panic. Cold — only reached
    /// on a genuine livelock.
    #[cold]
    fn no_progress_abort(&self, tripped: Entry) -> !
    where
        E: std::fmt::Debug,
    {
        const DUMP: usize = 32;
        let mut pending: Vec<Entry> = self
            .buckets
            .iter()
            .flatten()
            .chain(self.overflow.iter())
            .copied()
            .collect();
        pending.sort_by(|a, b| a.time.cmp(&b.time).then(a.seq.cmp(&b.seq)));
        let mut dump = String::new();
        for e in std::iter::once(&tripped).chain(pending.iter()).take(DUMP) {
            dump.push_str(&format!(
                "  at {:?} seq {}: {:?}\n",
                e.time, e.seq, self.slab[e.slot as usize]
            ));
        }
        let omitted = (pending.len() + 1).saturating_sub(DUMP);
        panic!(
            "event queue made no progress: {} consecutive events delivered at {:?} \
             (stall limit {}); the simulation is livelocked. Next {} pending events \
             in delivery order ({} more omitted):\n{}",
            self.stall_streak,
            self.now,
            self.stall_limit,
            (pending.len() + 1).min(DUMP),
            omitted,
            dump
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::run_cases;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(30), 3);
        q.schedule_at(Time::from_ns(10), 1);
        q.schedule_at(Time::from_ns(20), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn fifo_among_simultaneous() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Time::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(5), ());
        q.schedule_at(Time::from_ns(5), ());
        q.schedule_at(Time::from_ns(9), ());
        let mut last = Time::ZERO;
        while q.pop().is_some() {
            assert!(q.now() >= last);
            last = q.now();
        }
        assert_eq!(last, Time::from_ns(9));
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(10), ());
        q.pop();
        q.schedule_at(Time::from_ns(5), ());
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(10), 1);
        q.pop();
        q.schedule_at(Time::from_ns(10), 2);
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        // Steady state: one event in flight at a time. The slab must
        // not grow beyond the peak concurrency.
        for i in 0..1000u64 {
            q.schedule_at(Time::from_ns(i), i);
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.slab.len(), 1);
        // Peak of 3 pending -> 3 slots, reused forever after.
        for i in 0..3u64 {
            q.schedule_after(Time::from_ns(i + 1), i);
        }
        while q.pop().is_some() {}
        for i in 0..100u64 {
            q.schedule_after(Time::from_ns(i + 1), i);
            if i % 2 == 0 {
                q.pop();
            }
        }
        while q.pop().is_some() {}
        assert!(q.slab.len() <= 51, "slab grew to {}", q.slab.len());
    }

    #[test]
    fn delivered_counter_flushes_on_drop() {
        let before = events_delivered();
        {
            let mut q = EventQueue::new();
            for i in 0..5u64 {
                q.schedule_at(Time::from_ns(i), i);
            }
            while q.pop().is_some() {}
        }
        assert!(events_delivered() >= before + 5);
    }

    #[test]
    fn watchdog_off_by_default_tolerates_long_same_time_runs() {
        let mut q = EventQueue::new();
        q.set_stall_limit(0);
        for i in 0..10_000u64 {
            q.schedule_at(Time::from_ns(7), i);
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 10_000);
    }

    #[test]
    #[should_panic(expected = "event queue made no progress")]
    fn watchdog_trips_on_livelock() {
        let mut q = EventQueue::new();
        q.set_stall_limit(100);
        // A self-rescheduling zero-delay event: time never advances.
        q.schedule_at(Time::from_ns(1), 0u64);
        while let Some(e) = q.pop() {
            q.schedule_after(Time::ZERO, e + 1);
        }
    }

    #[test]
    fn watchdog_streak_resets_when_time_advances() {
        let mut q = EventQueue::new();
        q.set_stall_limit(50);
        // 40 same-instant events per step stays under the limit as
        // long as the clock moves between bursts.
        for step in 0..10u64 {
            for i in 0..40u64 {
                q.schedule_at(Time::from_ns(step + 1), i);
            }
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 400);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_after(Time::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_jump_lands_in_overflow_and_back() {
        let mut q = EventQueue::new();
        // A full idle year of the initial window, then a cluster.
        q.schedule_at(Time::from_secs(100), 2);
        q.schedule_at(Time::from_secs(100), 3);
        q.schedule_at(Time::from_ns(1), 1);
        assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
        assert_eq!(q.pop(), Some(1));
        // Insert at `now` after the cursor advanced past its bucket.
        q.schedule_at(Time::from_ns(1), 10);
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.peek_time(), Some(Time::from_secs(100)));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None::<u64>);
    }

    /// Minimal ordered reference: a max-heap of the same reversed keys.
    struct RefQueue {
        heap: std::collections::BinaryHeap<Entry>,
        seq: u64,
    }

    impl RefQueue {
        fn new() -> Self {
            RefQueue {
                heap: std::collections::BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push(&mut self, t: Time) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry {
                time: t,
                seq,
                slot: 0,
            });
        }
        fn pop(&mut self) -> Option<(Time, u64)> {
            self.heap.pop().map(|e| (e.time, e.seq))
        }
    }

    #[test]
    fn calendar_matches_heap_reference_on_random_histories() {
        run_cases("queue::calendar_vs_heap", crate::check::cases(60), |g| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut r = RefQueue::new();
            let mut label = 0u64;
            let ops = g.usize_in(1, 400);
            for _ in 0..ops {
                match g.usize_in(0, 10) {
                    // Bursts of same-instant events exercise FIFO ties.
                    0..=2 => {
                        let dt = Time::from_ps(g.u64_in(0, 2_000));
                        let n = g.usize_in(1, 8);
                        for _ in 0..n {
                            q.schedule_after(dt, label);
                            r.push(q.now() + dt);
                            label += 1;
                        }
                    }
                    // Near-future single events.
                    3..=5 => {
                        let dt = Time::from_ps(g.u64_in(0, 5_000_000));
                        q.schedule_after(dt, label);
                        r.push(q.now() + dt);
                        label += 1;
                    }
                    // Far-future events land in the overflow level.
                    6 => {
                        let dt = Time::from_us(g.u64_in(1, 10_000_000));
                        q.schedule_after(dt, label);
                        r.push(q.now() + dt);
                        label += 1;
                    }
                    // Pops, including runs of them.
                    _ => {
                        let n = g.usize_in(1, 6);
                        for _ in 0..n {
                            let got = q.pop();
                            let want = r.pop();
                            match (got, want) {
                                (None, None) => {}
                                (Some(v), Some((t, seq))) => {
                                    assert_eq!(v, seq, "payload order diverged");
                                    assert_eq!(q.now(), t, "clock diverged");
                                }
                                (g2, w) => panic!("pop mismatch: {g2:?} vs {w:?}"),
                            }
                        }
                    }
                }
            }
            // Drain; both must agree to the end.
            loop {
                match (q.pop(), r.pop()) {
                    (None, None) => break,
                    (Some(v), Some((t, seq))) => {
                        assert_eq!(v, seq);
                        assert_eq!(q.now(), t);
                    }
                    (g2, w) => panic!("drain mismatch: {g2:?} vs {w:?}"),
                }
            }
        });
    }

    #[test]
    fn calendar_handles_steady_state_churn_across_rebases() {
        run_cases("queue::steady_churn", crate::check::cases(20), |g| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut r = RefQueue::new();
            // Seed a pending window, then run schedule-one/pop-one for
            // long enough to cross several rebases.
            for i in 0..32 {
                let t = Time::from_ns(g.u64_in(0, 50));
                q.schedule_at(t, i);
                r.push(t);
            }
            for i in 32..2_000u64 {
                let (v, (t, seq)) = (q.pop().unwrap(), r.pop().unwrap());
                assert_eq!(v, seq);
                assert_eq!(q.now(), t);
                let dt = Time::from_ns(g.u64_in(0, 100_000));
                q.schedule_after(dt, i);
                r.push(q.now() + dt);
            }
            while let Some(v) = q.pop() {
                assert_eq!(v, r.pop().unwrap().1);
            }
            assert!(r.pop().is_none());
        });
    }
}
