//! Property-based tests of the simulation engine's invariants.

use dmx_sim::{water_fill, EventQueue, FifoServer, PsPool, Time};
use proptest::prelude::*;

proptest! {
    /// Water-filling never exceeds capacity, never exceeds a job's cap,
    /// and is work-conserving (either capacity is exhausted or every
    /// job runs at its cap).
    #[test]
    fn water_fill_invariants(
        capacity in 0.1f64..64.0,
        caps in prop::collection::vec(0.1f64..16.0, 1..20),
    ) {
        let rates = water_fill(capacity, &caps);
        let total: f64 = rates.iter().sum();
        prop_assert!(total <= capacity + 1e-9);
        for (r, c) in rates.iter().zip(&caps) {
            prop_assert!(*r <= c + 1e-9);
            prop_assert!(*r >= 0.0);
        }
        let all_capped = rates.iter().zip(&caps).all(|(r, c)| (r - c).abs() < 1e-9);
        prop_assert!(
            (total - capacity).abs() < 1e-6 || all_capped,
            "work conservation violated: total={total}, capacity={capacity}"
        );
    }

    /// Every job inserted into a PsPool eventually completes, and the
    /// busy core-time equals the total work inserted.
    #[test]
    fn ps_pool_conserves_work(
        jobs in prop::collection::vec((1u64..5_000_000, 1u32..8), 1..12),
        capacity in 1u32..32,
    ) {
        let mut pool = PsPool::new(capacity as f64);
        let mut total_work = 0u64;
        for (i, (work_ps, cap)) in jobs.iter().enumerate() {
            pool.insert(Time::ZERO, i as u64, Time::from_ps(*work_ps), *cap as f64);
            total_work += work_ps;
        }
        let mut done = pool.take_finished().len();
        let mut guard = 0;
        while done < jobs.len() {
            let t = pool.next_event(Time::ZERO).expect("jobs pending");
            pool.advance(t);
            done += pool.take_finished().len();
            guard += 1;
            prop_assert!(guard < 10_000, "pool did not converge");
        }
        prop_assert_eq!(pool.jobs_completed() as usize, jobs.len());
        let busy_ps = pool.busy_core_secs() * 1e12;
        // Completion rounds up to whole picoseconds per event, so allow
        // one picosecond of slack per job per advance.
        prop_assert!(
            (busy_ps - total_work as f64).abs() <= guard as f64 * capacity as f64 + jobs.len() as f64,
            "busy {} vs work {}",
            busy_ps,
            total_work
        );
    }

    /// FIFO servers never start a job before its submission and never
    /// run more jobs than servers at once (checked via total busy time
    /// <= horizon * servers).
    #[test]
    fn fifo_server_feasibility(
        services in prop::collection::vec(1u64..1_000_000, 1..40),
        servers in 1usize..4,
    ) {
        let mut s = FifoServer::new(servers);
        let mut last_done = Time::ZERO;
        for &svc in &services {
            let done = s.submit(Time::ZERO, Time::from_ps(svc));
            last_done = last_done.max(done);
        }
        let total: u64 = services.iter().sum();
        prop_assert_eq!(s.busy_time(), Time::from_ps(total));
        // Makespan is at least total/servers and at most total.
        prop_assert!(last_done.as_ps() >= total / servers as u64);
        prop_assert!(last_done.as_ps() <= total);
        prop_assert!(s.utilization(last_done.max(Time::from_ps(1))) <= 1.0 + 1e-9);
    }

    /// The event queue delivers every event exactly once, in
    /// nondecreasing time order, FIFO among ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(Time::from_ps(t), (t, i));
        }
        let mut seen = 0;
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            prop_assert_eq!(q.now(), Time::from_ps(t));
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
            seen += 1;
        }
        prop_assert_eq!(seen, times.len());
    }
}
