//! Property-based tests of the simulation engine's invariants, on the
//! in-tree deterministic harness (`dmx_sim::check`).

use dmx_sim::{cases, run_cases, water_fill, EventQueue, FifoServer, PsPool, Time};

fn n_cases() -> usize {
    cases(if cfg!(feature = "heavy-tests") {
        512
    } else {
        64
    })
}

/// Water-filling never exceeds capacity, never exceeds a job's cap,
/// and is work-conserving (either capacity is exhausted or every job
/// runs at its cap).
#[test]
fn water_fill_invariants() {
    run_cases("sim::water_fill_invariants", n_cases(), |g| {
        let capacity = g.f64_in(0.1, 64.0);
        let caps = g.vec(1, 20, |g| g.f64_in(0.1, 16.0));
        let rates = water_fill(capacity, &caps);
        let total: f64 = rates.iter().sum();
        assert!(total <= capacity + 1e-9);
        for (r, c) in rates.iter().zip(&caps) {
            assert!(*r <= c + 1e-9);
            assert!(*r >= 0.0);
        }
        let all_capped = rates.iter().zip(&caps).all(|(r, c)| (r - c).abs() < 1e-9);
        assert!(
            (total - capacity).abs() < 1e-6 || all_capped,
            "work conservation violated: total={total}, capacity={capacity}"
        );
    });
}

/// Allocations sum to exactly `min(capacity, Σcaps)`.
#[test]
fn water_fill_sums_to_min_of_capacity_and_demand() {
    run_cases("sim::water_fill_sum", n_cases(), |g| {
        let capacity = g.f64_in(0.1, 64.0);
        let caps = g.vec(1, 20, |g| g.f64_in(0.1, 16.0));
        let rates = water_fill(capacity, &caps);
        let total: f64 = rates.iter().sum();
        let demand: f64 = caps.iter().sum();
        let want = capacity.min(demand);
        assert!(
            (total - want).abs() <= want * 1e-9 + 1e-9,
            "total {total} != min(capacity, demand) {want}"
        );
    });
}

/// Uncapped jobs (caps above their fair share) all receive the same
/// rate, and no capped job gets more than an uncapped one.
#[test]
fn water_fill_fair_among_uncapped() {
    run_cases("sim::water_fill_fairness", n_cases(), |g| {
        let capacity = g.f64_in(1.0, 32.0);
        let caps = g.vec(2, 16, |g| g.f64_in(0.05, 8.0));
        let rates = water_fill(capacity, &caps);
        // "Uncapped" = allocation strictly below its cap; all such jobs
        // must sit at the common water level.
        let uncapped: Vec<f64> = rates
            .iter()
            .zip(&caps)
            .filter(|(r, c)| **r < **c - 1e-9)
            .map(|(r, _)| *r)
            .collect();
        if let Some(&level) = uncapped.first() {
            for r in &uncapped {
                assert!((r - level).abs() <= 1e-9 * level.max(1.0), "{r} vs {level}");
            }
            // Capped jobs saturated below the water level never exceed it.
            for (r, c) in rates.iter().zip(&caps) {
                if (*r - *c).abs() <= 1e-9 {
                    assert!(*r <= level + 1e-9, "capped {r} above level {level}");
                }
            }
        }
    });
}

/// Degenerate shapes: empty job list, zero-ish capacity dominated by
/// caps, single job.
#[test]
fn water_fill_edge_shapes() {
    assert!(water_fill(4.0, &[]).is_empty());
    assert_eq!(water_fill(10.0, &[3.0]), vec![3.0]);
    assert_eq!(water_fill(2.0, &[3.0]), vec![2.0]);
    let even = water_fill(9.0, &[5.0, 5.0, 5.0]);
    for r in &even {
        assert!((r - 3.0).abs() < 1e-12);
    }
}

/// Every job inserted into a PsPool eventually completes, and the busy
/// core-time equals the total work inserted.
#[test]
fn ps_pool_conserves_work() {
    run_cases("sim::ps_pool_conserves_work", n_cases(), |g| {
        let jobs = g.vec(1, 12, |g| (g.u64_in(1, 5_000_000), g.u64_in(1, 8) as u32));
        let capacity = g.u64_in(1, 32) as u32;
        let mut pool = PsPool::new(capacity as f64);
        let mut total_work = 0u64;
        for (i, (work_ps, cap)) in jobs.iter().enumerate() {
            pool.insert(Time::ZERO, i as u64, Time::from_ps(*work_ps), *cap as f64);
            total_work += work_ps;
        }
        let mut done = pool.take_finished().len();
        let mut guard = 0;
        while done < jobs.len() {
            let t = pool.next_event(Time::ZERO).expect("jobs pending");
            pool.advance(t);
            done += pool.take_finished().len();
            guard += 1;
            assert!(guard < 10_000, "pool did not converge");
        }
        assert_eq!(pool.jobs_completed() as usize, jobs.len());
        let busy_ps = pool.busy_core_secs() * 1e12;
        // Completion rounds up to whole picoseconds per event, so allow
        // one picosecond of slack per job per advance.
        assert!(
            (busy_ps - total_work as f64).abs()
                <= guard as f64 * capacity as f64 + jobs.len() as f64,
            "busy {busy_ps} vs work {total_work}"
        );
    });
}

/// FIFO servers never start a job before its submission and never run
/// more jobs than servers at once (checked via total busy time <=
/// horizon * servers).
#[test]
fn fifo_server_feasibility() {
    run_cases("sim::fifo_server_feasibility", n_cases(), |g| {
        let services = g.vec(1, 40, |g| g.u64_in(1, 1_000_000));
        let servers = g.usize_in(1, 4);
        let mut s = FifoServer::new(servers);
        let mut last_done = Time::ZERO;
        for &svc in &services {
            let done = s.submit(Time::ZERO, Time::from_ps(svc));
            last_done = last_done.max(done);
        }
        let total: u64 = services.iter().sum();
        assert_eq!(s.busy_time(), Time::from_ps(total));
        // Makespan is at least total/servers and at most total.
        assert!(last_done.as_ps() >= total / servers as u64);
        assert!(last_done.as_ps() <= total);
        assert!(s.utilization(last_done.max(Time::from_ps(1))) <= 1.0 + 1e-9);
    });
}

/// The event queue delivers every event exactly once, in nondecreasing
/// time order, FIFO among ties.
#[test]
fn event_queue_total_order() {
    run_cases("sim::event_queue_total_order", n_cases(), |g| {
        let times = g.vec(1, 200, |g| g.u64_in(0, 1000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(Time::from_ps(t), (t, i));
        }
        let mut seen = 0;
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            assert_eq!(q.now(), Time::from_ps(t));
            if let Some((lt, li)) = last {
                assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
            seen += 1;
        }
        assert_eq!(seen, times.len());
    });
}

/// All-equal timestamps drain in exact insertion order — FIFO
/// stability is a hard guarantee, not a tie-break accident.
#[test]
fn event_queue_fifo_at_equal_timestamps() {
    let mut q = EventQueue::new();
    for i in 0..100 {
        q.schedule_at(Time::from_us(5), i);
    }
    let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
    assert_eq!(drained, (0..100).collect::<Vec<_>>());

    // Interleaved with earlier/later events, ties still hold order.
    let mut q = EventQueue::new();
    q.schedule_at(Time::from_us(9), "late");
    q.schedule_at(Time::from_us(5), "tie-a");
    q.schedule_at(Time::from_us(1), "early");
    q.schedule_at(Time::from_us(5), "tie-b");
    q.schedule_at(Time::from_us(5), "tie-c");
    let drained: Vec<&str> = std::iter::from_fn(|| q.pop()).collect();
    assert_eq!(drained, vec!["early", "tie-a", "tie-b", "tie-c", "late"]);
}
