//! PCIe tree topology: root complex, switches, bump-in-the-wire
//! multiplexers, and endpoint devices, connected by [`LinkSpec`] links.

use crate::link::{Gen, LinkSpec};
use dmx_sim::Time;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Errors the fabric model can report instead of panicking.
///
/// The hot paths ([`Topology::route`], [`crate::FlowNet::insert`]) keep
/// their panicking signatures for ergonomic use from the simulator, but
/// each is a thin wrapper over a `try_*` variant returning this error,
/// so callers that must survive malformed inputs (e.g. fuzzing, fault
/// injection with dead nodes) can handle them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// A non-root node had no parent link: the tree is malformed.
    OrphanNode(NodeId),
    /// A node id out of range for this topology.
    UnknownNode(NodeId),
    /// A route referenced a link the flow network does not know.
    UnknownLink(LinkId),
    /// A flow was inserted over an empty route.
    EmptyRoute,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::OrphanNode(n) => {
                write!(
                    f,
                    "malformed topology: non-root node {} has no parent",
                    n.index()
                )
            }
            FabricError::UnknownNode(n) => write!(f, "unknown node {}", n.index()),
            FabricError::UnknownLink(l) => write!(f, "route references unknown link {}", l.index()),
            FabricError::EmptyRoute => write!(
                f,
                "flows must cross at least one link; model local copies separately"
            ),
        }
    }
}

impl std::error::Error for FabricError {}

/// Index of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (stable for the lifetime of the topology).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Index of a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// Raw index (stable for the lifetime of the topology).
    pub fn index(self) -> usize {
        self.0
    }

    /// Creates a link id from a raw index. Only meaningful together with
    /// a [`crate::FlowNet`] built from the same bandwidth vector.
    pub fn from_index(index: usize) -> LinkId {
        LinkId(index)
    }
}

/// What a topology node is. Traversal latency differs per kind:
/// a PCIe switch costs 110 ns port-to-port (Sec. VII.B), the
/// bump-in-the-wire DRX's internal dual-port multiplexer is a much
/// cheaper pass-through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The CPU root complex.
    RootComplex,
    /// A PCIe switch.
    Switch,
    /// The internal PCIe multiplexer of a bump-in-the-wire DRX
    /// (pass-through for traffic not destined to the DRX).
    Mux,
    /// A leaf device: an accelerator, a DRX, or the host DMA target.
    Device,
}

impl NodeKind {
    /// Latency for a transaction to traverse *through* this node
    /// (not charged at route endpoints).
    pub fn traversal_latency(self) -> Time {
        match self {
            // Port-to-port latency tax of a PCIe switch (Sec. VII.B).
            NodeKind::Switch => Time::from_ns(110),
            // Pass-through mux of a bump-in-the-wire DRX (Fig. 10 step 10).
            NodeKind::Mux => Time::from_ns(25),
            NodeKind::RootComplex => Time::from_ns(50),
            NodeKind::Device => Time::ZERO,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    label: String,
    parent: Option<(NodeId, LinkId)>,
    depth: usize,
}

#[derive(Debug, Clone)]
struct Edge {
    spec: LinkSpec,
    child: NodeId,
}

/// A routed path between two nodes: the links it crosses, the
/// intermediate nodes it traverses, and the accumulated fixed latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Links crossed, in order from source to destination.
    pub links: Vec<LinkId>,
    /// Nodes traversed *between* the endpoints, in order.
    pub via: Vec<NodeId>,
    /// Sum of traversal latencies of `via` nodes.
    pub latency: Time,
}

impl Route {
    /// An empty route (source == destination).
    pub fn empty() -> Route {
        Route {
            links: Vec::new(),
            via: Vec::new(),
            latency: Time::ZERO,
        }
    }

    /// Number of links crossed.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }
}

/// A PCIe device tree.
///
/// Build it top-down from the root complex:
///
/// ```
/// use dmx_pcie::{Gen, Lanes, LinkSpec, NodeKind, Topology};
/// let mut topo = Topology::new();
/// let root = topo.root();
/// let up = LinkSpec::new(Gen::Gen3, Lanes::X8);
/// let down = LinkSpec::new(Gen::Gen3, Lanes::X16);
/// let sw = topo.add_node(NodeKind::Switch, "switch0", root, up);
/// let a = topo.add_node(NodeKind::Device, "accel0", sw, down);
/// let b = topo.add_node(NodeKind::Device, "accel1", sw, down);
/// let route = topo.route(a, b);
/// assert_eq!(route.hop_count(), 2);          // a->switch, switch->b
/// assert_eq!(route.via, vec![sw]);           // through one switch
/// ```
#[derive(Debug, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Edge>,
    /// `(src, dst) → Route` memo. The tree is append-only — nodes are
    /// never re-parented and traversal latencies are fixed per kind —
    /// so memoized routes never go stale; no eviction is needed. Behind
    /// a mutex so `route(&self)` stays shareable across sweep workers.
    /// Entries are `Arc`'d so hot callers ([`Topology::try_route_shared`])
    /// get a handle bump instead of cloning two vecs per flow start.
    route_memo: Mutex<HashMap<(usize, usize), Arc<Route>>>,
}

impl Clone for Topology {
    fn clone(&self) -> Topology {
        Topology {
            nodes: self.nodes.clone(),
            links: self.links.clone(),
            // The clone starts with a cold memo; it refills on use.
            route_memo: Mutex::new(HashMap::new()),
        }
    }
}

impl Topology {
    /// Creates a topology containing only the root complex.
    pub fn new() -> Topology {
        Topology {
            nodes: vec![Node {
                kind: NodeKind::RootComplex,
                label: "root".to_owned(),
                parent: None,
                depth: 0,
            }],
            links: Vec::new(),
            route_memo: Mutex::new(HashMap::new()),
        }
    }

    /// The root complex node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Adds a node of `kind` under `parent`, connected by `link`.
    /// Returns the new node's id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range or a `Device` (leaves cannot
    /// have children).
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        label: impl Into<String>,
        parent: NodeId,
        link: LinkSpec,
    ) -> NodeId {
        assert!(parent.0 < self.nodes.len(), "parent out of range");
        assert!(
            self.nodes[parent.0].kind != NodeKind::Device,
            "devices are leaves and cannot have children"
        );
        let id = NodeId(self.nodes.len());
        let link_id = LinkId(self.links.len());
        self.links.push(Edge {
            spec: link,
            child: id,
        });
        let depth = self.nodes[parent.0].depth + 1;
        self.nodes.push(Node {
            kind,
            label: label.into(),
            parent: Some((parent, link_id)),
            depth,
        });
        id
    }

    /// Number of nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The kind of a node.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.0].kind
    }

    /// The label a node was created with.
    pub fn label(&self, node: NodeId) -> &str {
        &self.nodes[node.0].label
    }

    /// The parent of a node, with the connecting link.
    pub fn parent(&self, node: NodeId) -> Option<(NodeId, LinkId)> {
        self.nodes[node.0].parent
    }

    /// The link spec of a link.
    pub fn link_spec(&self, link: LinkId) -> LinkSpec {
        self.links[link.0].spec
    }

    /// Bandwidths of every link, indexed by [`LinkId::index`]; the shape
    /// expected by [`crate::FlowNet::new`].
    pub fn link_bandwidths(&self) -> Vec<u64> {
        self.links.iter().map(|l| l.spec.bytes_per_sec()).collect()
    }

    /// Rewrites every link to generation `gen`, preserving widths
    /// (the Fig. 19 PCIe-generation sweep).
    pub fn set_all_gens(&mut self, gen: Gen) {
        for l in &mut self.links {
            l.spec = l.spec.with_gen(gen);
        }
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Computes the unique tree route from `src` to `dst`.
    ///
    /// The route lists links in traversal order and every intermediate
    /// node (whose traversal latencies are summed into `Route::latency`).
    /// The endpoints themselves contribute no traversal latency.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node ids or a malformed tree; use
    /// [`Topology::try_route`] to handle those as errors.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route {
        match self.try_route(src, dst) {
            Ok(r) => r,
            Err(e) => panic!("Topology::route({src:?} -> {dst:?}) failed: {e}"),
        }
    }

    /// Fallible variant of [`Topology::route`].
    pub fn try_route(&self, src: NodeId, dst: NodeId) -> Result<Route, FabricError> {
        self.try_route_shared(src, dst).map(|r| (*r).clone())
    }

    /// Like [`Topology::try_route`] but returns the memoized route by
    /// shared handle: a cache hit is a lock + refcount bump, with no
    /// per-call vec clones. The hot flow-start path in `dmx-core` goes
    /// through this.
    pub fn try_route_shared(&self, src: NodeId, dst: NodeId) -> Result<Arc<Route>, FabricError> {
        for n in [src, dst] {
            if n.0 >= self.nodes.len() {
                return Err(FabricError::UnknownNode(n));
            }
        }
        if src == dst {
            return Ok(Arc::new(Route::empty()));
        }
        // A poisoned memo is still a valid cache (entries are written
        // whole); recover it rather than cascading another panic.
        if let Some(r) = self
            .route_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&(src.0, dst.0))
        {
            return Ok(Arc::clone(r));
        }
        let route = Arc::new(self.walk_route(src, dst)?);
        self.route_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert((src.0, dst.0), Arc::clone(&route));
        Ok(route)
    }

    /// The uncached LCA walk behind [`Topology::try_route`].
    fn walk_route(&self, src: NodeId, dst: NodeId) -> Result<Route, FabricError> {
        let parent_of = |n: NodeId| -> Result<(NodeId, LinkId), FabricError> {
            self.nodes[n.0].parent.ok_or(FabricError::OrphanNode(n))
        };
        // Walk both nodes up to their lowest common ancestor.
        let mut up_links = Vec::new(); // src -> lca
        let mut up_nodes = Vec::new();
        let mut down_links = Vec::new(); // dst -> lca (reversed later)
        let mut down_nodes = Vec::new();
        let mut a = src;
        let mut b = dst;
        while self.nodes[a.0].depth > self.nodes[b.0].depth {
            let (p, l) = parent_of(a)?;
            up_links.push(l);
            up_nodes.push(p);
            a = p;
        }
        while self.nodes[b.0].depth > self.nodes[a.0].depth {
            let (p, l) = parent_of(b)?;
            down_links.push(l);
            down_nodes.push(p);
            b = p;
        }
        while a != b {
            let (pa, la) = parent_of(a)?;
            let (pb, lb) = parent_of(b)?;
            up_links.push(la);
            up_nodes.push(pa);
            down_links.push(lb);
            down_nodes.push(pb);
            a = pa;
            b = pb;
        }
        // Both climbs end at the LCA. Count it as an intermediate node
        // exactly once — and not at all when it is itself an endpoint
        // (dst an ancestor of src, or vice versa).
        let mut via = up_nodes;
        if down_nodes.pop().is_none() {
            // dst == LCA: the climb from src ended *at* the destination.
            via.pop();
        }
        via.extend(down_nodes.into_iter().rev());
        let mut links = up_links;
        links.extend(down_links.into_iter().rev());
        let latency = via
            .iter()
            .map(|n| self.nodes[n.0].kind.traversal_latency())
            .sum();
        Ok(Route {
            links,
            via,
            latency,
        })
    }

    /// True when `node` lies in the subtree rooted at `ancestor`
    /// (inclusive: a node is in its own subtree).
    pub fn in_subtree(&self, node: NodeId, ancestor: NodeId) -> bool {
        let mut n = node;
        loop {
            if n == ancestor {
                return true;
            }
            match self.nodes.get(n.0).and_then(|x| x.parent) {
                Some((p, _)) => n = p,
                None => return false,
            }
        }
    }

    /// Every link inside the subtree rooted at `node`, *including* the
    /// subtree's own uplink: when a switch surprise-disappears, traffic
    /// on its uplink dies with it. Returned in link-id order.
    pub fn subtree_links(&self, node: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, e)| self.in_subtree(e.child, node))
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Bottleneck (minimum) bandwidth along a route, in bytes/second.
    /// Returns `None` for an empty route.
    pub fn route_bottleneck(&self, route: &Route) -> Option<u64> {
        route
            .links
            .iter()
            .map(|l| self.links[l.0].spec.bytes_per_sec())
            .min()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            topo: &Topology,
            node: NodeId,
            indent: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let n = &topo.nodes[node.0];
            let link = match n.parent {
                Some((_, l)) => format!(" <- {}", topo.links[l.0].spec),
                None => String::new(),
            };
            writeln!(
                f,
                "{:indent$}{:?} {}{}",
                "",
                n.kind,
                n.label,
                link,
                indent = indent
            )?;
            for (i, e) in topo.links.iter().enumerate() {
                let _ = i;
                if topo.nodes[e.child.0].parent.map(|(p, _)| p) == Some(node) {
                    rec(topo, e.child, indent + 2, f)?;
                }
            }
            Ok(())
        }
        rec(self, self.root(), 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Lanes;

    fn two_switch_topo() -> (Topology, NodeId, NodeId, NodeId, NodeId, NodeId, NodeId) {
        // root -- sw0 -- a0, a1
        //      \- sw1 -- b0
        let mut t = Topology::new();
        let up = LinkSpec::new(Gen::Gen3, Lanes::X8);
        let down = LinkSpec::new(Gen::Gen3, Lanes::X16);
        let root = t.root();
        let sw0 = t.add_node(NodeKind::Switch, "sw0", root, up);
        let sw1 = t.add_node(NodeKind::Switch, "sw1", root, up);
        let a0 = t.add_node(NodeKind::Device, "a0", sw0, down);
        let a1 = t.add_node(NodeKind::Device, "a1", sw0, down);
        let b0 = t.add_node(NodeKind::Device, "b0", sw1, down);
        (t, root, sw0, sw1, a0, a1, b0)
    }

    #[test]
    fn route_same_node_is_empty() {
        let (t, _, _, _, a0, _, _) = two_switch_topo();
        let r = t.route(a0, a0);
        assert_eq!(r, Route::empty());
        assert!(t.route_bottleneck(&r).is_none());
    }

    #[test]
    fn route_under_one_switch() {
        let (t, _, sw0, _, a0, a1, _) = two_switch_topo();
        let r = t.route(a0, a1);
        assert_eq!(r.hop_count(), 2);
        assert_eq!(r.via, vec![sw0]);
        assert_eq!(r.latency, Time::from_ns(110));
    }

    #[test]
    fn route_across_switches_goes_through_root() {
        let (t, root, sw0, sw1, a0, _, b0) = two_switch_topo();
        let r = t.route(a0, b0);
        assert_eq!(r.hop_count(), 4);
        assert_eq!(r.via, vec![sw0, root, sw1]);
        // 110 (sw0) + 50 (root) + 110 (sw1)
        assert_eq!(r.latency, Time::from_ns(270));
    }

    #[test]
    fn route_device_to_root() {
        let (t, root, sw0, _, a0, _, _) = two_switch_topo();
        let r = t.route(a0, root);
        assert_eq!(r.hop_count(), 2);
        assert_eq!(r.via, vec![sw0]);
        let back = t.route(root, a0);
        assert_eq!(back.hop_count(), 2);
        assert_eq!(back.via, vec![sw0]);
        // Same links in reverse order.
        let mut fwd = r.links.clone();
        fwd.reverse();
        assert_eq!(fwd, back.links);
    }

    #[test]
    fn bottleneck_is_upstream_x8() {
        let (t, root, _, _, a0, _, _) = two_switch_topo();
        let r = t.route(a0, root);
        let bw = t.route_bottleneck(&r).unwrap();
        assert_eq!(bw, LinkSpec::new(Gen::Gen3, Lanes::X8).bytes_per_sec());
    }

    #[test]
    fn mux_traversal_cheaper_than_switch() {
        assert!(NodeKind::Mux.traversal_latency() < NodeKind::Switch.traversal_latency());
    }

    #[test]
    fn set_all_gens_preserves_widths() {
        let (mut t, root, _, _, a0, _, _) = two_switch_topo();
        t.set_all_gens(Gen::Gen5);
        let r = t.route(a0, root);
        let bw = t.route_bottleneck(&r).unwrap();
        assert_eq!(bw, LinkSpec::new(Gen::Gen5, Lanes::X8).bytes_per_sec());
    }

    #[test]
    #[should_panic(expected = "devices are leaves")]
    fn devices_cannot_have_children() {
        let (mut t, _, _, _, a0, _, _) = two_switch_topo();
        t.add_node(
            NodeKind::Device,
            "bad",
            a0,
            LinkSpec::new(Gen::Gen3, Lanes::X1),
        );
    }

    #[test]
    fn try_route_rejects_unknown_nodes() {
        let (t, _, _, _, a0, _, _) = two_switch_topo();
        let bogus = NodeId(999);
        assert_eq!(t.try_route(a0, bogus), Err(FabricError::UnknownNode(bogus)));
        assert_eq!(t.try_route(bogus, a0), Err(FabricError::UnknownNode(bogus)));
        assert!(t.try_route(a0, a0).unwrap().links.is_empty());
        let msg = FabricError::UnknownNode(bogus).to_string();
        assert!(msg.contains("999"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn route_panics_on_unknown_node() {
        let (t, _, _, _, a0, _, _) = two_switch_topo();
        t.route(a0, NodeId(999));
    }

    #[test]
    fn memoized_routes_match_fresh_walks_after_growth() {
        let (mut t, root, _, _, a0, _, b0) = two_switch_topo();
        let first = t.route(a0, b0);
        // Growing the tree must not invalidate memoized routes (nodes
        // are never re-parented).
        let sw2 = t.add_node(
            NodeKind::Switch,
            "sw2",
            root,
            LinkSpec::new(Gen::Gen3, Lanes::X8),
        );
        let c0 = t.add_node(
            NodeKind::Device,
            "c0",
            sw2,
            LinkSpec::new(Gen::Gen3, Lanes::X16),
        );
        assert_eq!(t.route(a0, b0), first);
        assert_eq!(t.route(a0, b0), t.clone().route(a0, b0));
        // A route to the new subtree computes and memoizes fine.
        let r = t.route(a0, c0);
        assert_eq!(t.route(a0, c0), r);
        assert_eq!(r.via, vec![NodeId(1), root, sw2]);
    }

    #[test]
    fn subtree_membership_and_links() {
        let (t, root, sw0, sw1, a0, a1, b0) = two_switch_topo();
        assert!(t.in_subtree(a0, sw0));
        assert!(t.in_subtree(a1, sw0));
        assert!(t.in_subtree(sw0, sw0), "subtrees are inclusive");
        assert!(!t.in_subtree(b0, sw0));
        assert!(!t.in_subtree(sw0, sw1));
        assert!(t.in_subtree(b0, root), "everything is under the root");
        assert!(!t.in_subtree(NodeId(999), sw0), "unknown nodes are nowhere");

        // sw0's subtree: its own uplink plus the a0/a1 downlinks.
        let links = t.subtree_links(sw0);
        assert_eq!(links.len(), 3);
        let uplink = t.parent(sw0).unwrap().1;
        assert!(links.contains(&uplink), "uplink dies with the switch");
        assert!(links.contains(&t.parent(a0).unwrap().1));
        assert!(links.contains(&t.parent(a1).unwrap().1));
        assert!(!links.contains(&t.parent(b0).unwrap().1));
        // A leaf's subtree is exactly its own uplink.
        assert_eq!(t.subtree_links(b0), vec![t.parent(b0).unwrap().1]);
        // The root's subtree is every link.
        assert_eq!(t.subtree_links(root).len(), t.link_count());
    }

    #[test]
    fn display_renders_tree() {
        let (t, ..) = two_switch_topo();
        let s = t.to_string();
        assert!(s.contains("root"));
        assert!(s.contains("sw0"));
        assert!(s.contains("a1"));
    }
}
