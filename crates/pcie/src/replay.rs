//! PCIe link-level error recovery: chunk replay and link retrain.
//!
//! The PCIe data link layer guarantees delivery: every TLP is CRC-
//! protected, and a corrupted packet is NAKed and replayed from the
//! transmitter's replay buffer. DMX moves data in 256 KB chunks
//! (Sec. V's queue-pair granularity), so we model recovery at chunk
//! granularity: a chunk that catches at least one bit error is
//! retransmitted in full, paying the replay-buffer turnaround latency
//! and consuming link bandwidth a second time. A burst of errors on one
//! transfer pushes the link into *retrain* (recovery.speed change in
//! PCIe terms), which temporarily drops its usable bandwidth.
//!
//! All randomness comes from a [`FaultPlan`] keyed by the flow id, so a
//! transfer's fault outcome is a pure function of `(config, seed, flow)`.

use dmx_sim::{FaultPlan, Time};

/// Parameters of the chunk-replay / link-retrain model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayParams {
    /// Transfer chunk size; the unit of replay. DMX's DRX queues move
    /// data in 256 KB chunks.
    pub chunk_bytes: u64,
    /// Latency to detect the CRC error, NAK, and restart from the
    /// replay buffer, per replayed chunk (on top of re-sending the
    /// chunk's bytes).
    pub replay_latency: Time,
    /// Number of replayed chunks within a single transfer that pushes
    /// the link into retrain.
    pub retrain_threshold: u64,
    /// How long a retrain keeps the link degraded.
    pub retrain_time: Time,
    /// Bandwidth multiplier while retraining (PCIe drops to a lower
    /// speed during recovery).
    pub retrain_bw_scale: f64,
}

impl Default for ReplayParams {
    fn default() -> Self {
        ReplayParams {
            chunk_bytes: 256 * 1024,
            // DLLP NAK turnaround plus replay-buffer restart: ~1 us at
            // Gen3 (ack latency ~200 ns, conservative with software-
            // visible effects folded in).
            replay_latency: Time::from_us(1),
            retrain_threshold: 8,
            // Recovery.Speed is specced in the tens of microseconds;
            // observable retrains take longer once software notices.
            retrain_time: Time::from_us(100),
            retrain_bw_scale: 0.5,
        }
    }
}

/// Fault outcome of one transfer, derived deterministically from the
/// plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferFaults {
    /// Chunks that arrived corrupted and were retransmitted.
    pub replays: u64,
    /// Extra bytes the link must carry for the retransmissions.
    pub extra_bytes: u64,
    /// Fixed latency added by replay turnarounds.
    pub extra_latency: Time,
    /// Whether the error burst triggers a link retrain.
    pub retrain: bool,
}

impl TransferFaults {
    /// A clean transfer: nothing replayed.
    pub fn clean() -> TransferFaults {
        TransferFaults::default()
    }
}

/// Computes the fault outcome of moving `bytes` as flow `flow` under
/// `plan`. Deterministic and order-independent: depends only on the
/// plan's config and the arguments.
pub fn transfer_faults(
    plan: &FaultPlan,
    params: &ReplayParams,
    flow: u64,
    bytes: u64,
) -> TransferFaults {
    if plan.is_inert() || bytes == 0 {
        return TransferFaults::clean();
    }
    let chunk = params.chunk_bytes.max(1);
    let chunks = bytes.div_ceil(chunk);
    let per_chunk_p = plan.chunk_corruption_probability((chunk * 8) as f64);
    let replays = plan.corrupted_chunks(flow, chunks, per_chunk_p);
    if replays == 0 {
        return TransferFaults::clean();
    }
    TransferFaults {
        replays,
        extra_bytes: replays * chunk.min(bytes),
        extra_latency: params.replay_latency * replays,
        retrain: replays >= params.retrain_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_sim::FaultConfig;

    fn plan(ber: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed: 7,
            bit_error_rate: ber,
            ..FaultConfig::none()
        })
    }

    #[test]
    fn clean_link_never_replays() {
        let p = plan(0.0);
        for flow in 0..100 {
            assert_eq!(
                transfer_faults(&p, &ReplayParams::default(), flow, 16 << 20),
                TransferFaults::clean()
            );
        }
    }

    #[test]
    fn replays_scale_with_ber() {
        let params = ReplayParams::default();
        let total = |ber: f64| -> u64 {
            let p = plan(ber);
            (0..50)
                .map(|f| transfer_faults(&p, &params, f, 16 << 20).replays)
                .sum()
        };
        let low = total(1e-9);
        let high = total(1e-7);
        assert!(high > low, "high-BER {high} vs low-BER {low}");
        // 50 x 64 chunks at p~=2.1e-3: expect ~7 replays.
        assert!(low < 40, "{low}");
    }

    #[test]
    fn replay_costs_add_up() {
        let p = plan(1e-6);
        let params = ReplayParams::default();
        let tf = transfer_faults(&p, &params, 3, 16 << 20);
        assert!(tf.replays > 0);
        assert_eq!(tf.extra_bytes, tf.replays * params.chunk_bytes);
        assert_eq!(tf.extra_latency, params.replay_latency * tf.replays);
    }

    #[test]
    fn heavy_bursts_trigger_retrain() {
        // At BER 1e-6 nearly every 256 KB chunk is corrupted.
        let p = plan(1e-6);
        let tf = transfer_faults(&p, &ReplayParams::default(), 1, 16 << 20);
        assert!(tf.retrain, "{} replays", tf.replays);
        // A tiny transfer cannot cross the threshold.
        let small = transfer_faults(&p, &ReplayParams::default(), 1, 4 * 1024);
        assert!(!small.retrain);
    }

    #[test]
    fn deterministic_per_flow() {
        let p = plan(1e-7);
        let params = ReplayParams::default();
        let a = transfer_faults(&p, &params, 11, 8 << 20);
        let b = transfer_faults(&p, &params, 11, 8 << 20);
        assert_eq!(a, b);
        // Different flows see independent outcomes.
        let other = transfer_faults(&p, &params, 12, 8 << 20);
        let _ = other; // may or may not differ; just must not panic
    }

    #[test]
    fn sub_chunk_transfer_replays_whole_transfer() {
        let p = plan(1e-4);
        let params = ReplayParams::default();
        // 4 KB transfer: one "chunk" of 4 KB; extra bytes capped at the
        // transfer size.
        let tf = transfer_faults(&p, &params, 2, 4 * 1024);
        if tf.replays > 0 {
            assert_eq!(tf.extra_bytes, tf.replays * 4 * 1024);
        }
    }
}
