//! Inter-node links: the network hop between DMX servers in a fleet.
//!
//! Inside one server, chains ride the PCIe tree modeled by
//! [`Topology`](crate::topology::Topology) / [`FlowNet`](crate::flow::FlowNet).
//! Between servers — load balancer to server, server to server — traffic
//! crosses a datacenter network link instead. This module models that hop
//! just precisely enough for fleet simulation:
//!
//! * a fixed one-way **base latency** (propagation + NIC + switch
//!   traversal + kernel/NIC doorbell overhead), and
//! * a **serialization** term, `bytes / bandwidth`, for the message body.
//!
//! The base latency doubles as the **lookahead** of conservative
//! partitioned execution (`dmx_sim::partition`): no message between two
//! nodes can arrive sooner than the smallest base latency in the fleet,
//! so every partition may safely advance `min_base_latency` past the
//! global minimum event time. [`InterNodeFabric::lookahead`] extracts
//! exactly that bound; it deliberately ignores the serialization term
//! (a zero-byte message is still a legal message).

use crate::link::LinkSpec;
use dmx_sim::{transfer_time, Time};

/// One direction of a network link between two fleet nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterNodeLink {
    /// One-way base latency applied to every message regardless of size.
    pub base_latency: Time,
    /// Body bandwidth in bytes per second.
    pub bytes_per_sec: u64,
}

impl InterNodeLink {
    /// A software-load-balancer hop over 25GbE inside one rack:
    /// ~25 µs one way (kernel network stack + ToR switch), 25 Gb/s of
    /// body bandwidth. The default fleet fabric.
    pub fn rack_25g() -> InterNodeLink {
        InterNodeLink {
            base_latency: Time::from_us(25),
            bytes_per_sec: 25_000_000_000 / 8,
        }
    }

    /// A kernel-bypass RDMA-class hop: ~3 µs one way, 100 Gb/s.
    pub fn rdma_100g() -> InterNodeLink {
        InterNodeLink {
            base_latency: Time::from_us(3),
            bytes_per_sec: 100_000_000_000 / 8,
        }
    }

    /// A custom link.
    pub fn new(base_latency: Time, bytes_per_sec: u64) -> InterNodeLink {
        InterNodeLink {
            base_latency,
            bytes_per_sec,
        }
    }

    /// One-way delivery time for a `bytes`-byte message: base latency
    /// plus serialization.
    pub fn delivery_time(&self, bytes: u64) -> Time {
        self.base_latency + transfer_time(bytes, self.bytes_per_sec)
    }

    /// An inter-node hop carrying PCIe-attached traffic can never beat
    /// the host's own root link; clamp bandwidth to it (latency is
    /// unaffected — the network hop dominates).
    pub fn capped_by(&self, root: LinkSpec) -> InterNodeLink {
        InterNodeLink {
            base_latency: self.base_latency,
            bytes_per_sec: self.bytes_per_sec.min(root.bytes_per_sec()),
        }
    }
}

/// A scheduled window during which one fleet node's network hop is
/// *dark*: messages handed to the link while the window covers their
/// send instant are lost in both directions — dispatches never reach
/// the server, resolutions never reach the load balancer. Unlike a
/// server crash, the server itself keeps running; only the LB's view
/// of it goes silent, which is exactly the failure a per-request LB
/// timeout plus cross-server re-dispatch exists to cover.
///
/// Losing a message never shrinks the conservative lookahead — a lost
/// message is one that arrives never, which trivially satisfies
/// "no earlier than `t + lookahead`" — so outage schedules compose
/// with `dmx_sim::partition` unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutage {
    /// When the hop goes dark.
    pub at: Time,
    /// Outage length; `None` means the hop never recovers.
    pub down_for: Option<Time>,
}

impl LinkOutage {
    /// True when the window covers instant `t` (a message *sent* at
    /// `t` is lost; delivery-side checks would double-drop).
    pub fn covers(&self, t: Time) -> bool {
        t >= self.at && self.down_for.map(|d| t < self.at + d).unwrap_or(true)
    }
}

/// The inter-node fabric of a fleet: a star — every server connects to
/// the front-end load balancer over the same link class. (A star is the
/// topology software load balancers induce; per-pair links can be added
/// later without changing the lookahead contract.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterNodeFabric {
    /// The LB↔server link, both directions.
    pub link: InterNodeLink,
}

impl InterNodeFabric {
    /// A fabric where every hop uses `link`.
    pub fn uniform(link: InterNodeLink) -> InterNodeFabric {
        InterNodeFabric { link }
    }

    /// The conservative-execution lookahead: the minimum base latency
    /// over every inter-node hop. Any cross-partition message sent at
    /// local time `t` arrives no earlier than `t + lookahead`, which is
    /// the promise `dmx_sim::partition::run_conservative` verifies at
    /// every window barrier.
    pub fn lookahead(&self) -> Time {
        self.link.base_latency
    }

    /// Delivery time of a `bytes`-byte message on the LB↔server hop.
    pub fn delivery_time(&self, bytes: u64) -> Time {
        self.link.delivery_time(bytes)
    }
}

impl Default for InterNodeFabric {
    fn default() -> InterNodeFabric {
        InterNodeFabric::uniform(InterNodeLink::rack_25g())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Gen, Lanes};

    #[test]
    fn delivery_time_is_latency_plus_serialization() {
        let l = InterNodeLink::new(Time::from_us(10), 1_000_000_000);
        assert_eq!(l.delivery_time(0), Time::from_us(10));
        // 1 MB at 1 GB/s = 1 ms on top of the base 10 µs.
        assert_eq!(
            l.delivery_time(1_000_000),
            Time::from_us(10) + Time::from_ms(1)
        );
    }

    #[test]
    fn rack_hop_dominates_rdma_hop() {
        let rack = InterNodeLink::rack_25g();
        let rdma = InterNodeLink::rdma_100g();
        assert!(rack.base_latency > rdma.base_latency);
        assert!(rack.bytes_per_sec < rdma.bytes_per_sec);
        assert!(rack.delivery_time(4096) > rdma.delivery_time(4096));
    }

    #[test]
    fn lookahead_is_base_latency_not_serialization() {
        let fab = InterNodeFabric::uniform(InterNodeLink::new(Time::from_us(7), 1));
        // Bandwidth of 1 B/s would make serialization enormous, but
        // lookahead only promises the size-independent floor.
        assert_eq!(fab.lookahead(), Time::from_us(7));
    }

    #[test]
    fn capped_by_root_link() {
        let fat = InterNodeLink::new(Time::from_us(5), u64::MAX);
        let root = LinkSpec::new(Gen::Gen3, Lanes::X16);
        let capped = fat.capped_by(root);
        assert_eq!(capped.bytes_per_sec, root.bytes_per_sec());
        assert_eq!(capped.base_latency, Time::from_us(5));
        // A slim link is unaffected.
        let slim = InterNodeLink::new(Time::from_us(5), 1_000);
        assert_eq!(slim.capped_by(root).bytes_per_sec, 1_000);
    }

    #[test]
    fn outage_window_covers_send_instants() {
        let w = LinkOutage {
            at: Time::from_ms(10),
            down_for: Some(Time::from_ms(5)),
        };
        assert!(!w.covers(Time::from_ms(9)));
        assert!(w.covers(Time::from_ms(10)));
        assert!(w.covers(Time::from_us(14_999)));
        assert!(!w.covers(Time::from_ms(15)));
        let forever = LinkOutage {
            at: Time::from_ms(10),
            down_for: None,
        };
        assert!(forever.covers(Time::from_secs_f64(1e6)));
    }

    #[test]
    fn default_fabric_is_rack_star() {
        let fab = InterNodeFabric::default();
        assert_eq!(fab.lookahead(), Time::from_us(25));
        assert_eq!(fab.delivery_time(0), Time::from_us(25));
    }
}
