//! PCIe generations, lane widths, and effective link bandwidth.

use dmx_sim::{transfer_time, Time};
use std::fmt;

/// PCIe generation (the paper evaluates Gen 3 through Gen 5 in Fig. 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gen {
    /// PCIe 3.x: 8 GT/s, 128b/130b encoding.
    Gen3,
    /// PCIe 4.x: 16 GT/s, 128b/130b encoding.
    Gen4,
    /// PCIe 5.x: 32 GT/s, 128b/130b encoding.
    Gen5,
}

impl Gen {
    /// All generations, oldest first.
    pub const ALL: [Gen; 3] = [Gen::Gen3, Gen::Gen4, Gen::Gen5];

    /// Effective data bandwidth of one lane in bytes per second,
    /// after 128b/130b line coding (the usual “~1 GB/s per Gen3 lane”
    /// figure): 8 GT/s x 128/130 / 8 bits = 984.6 MB/s.
    pub fn lane_bytes_per_sec(self) -> u64 {
        match self {
            Gen::Gen3 => 984_615_384,
            Gen::Gen4 => 1_969_230_769,
            Gen::Gen5 => 3_938_461_538,
        }
    }
}

impl fmt::Display for Gen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gen::Gen3 => write!(f, "Gen3"),
            Gen::Gen4 => write!(f, "Gen4"),
            Gen::Gen5 => write!(f, "Gen5"),
        }
    }
}

/// A link width (number of lanes): x1, x2, x4, x8, or x16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lanes(u8);

impl Lanes {
    /// One lane.
    pub const X1: Lanes = Lanes(1);
    /// Two lanes.
    pub const X2: Lanes = Lanes(2);
    /// Four lanes.
    pub const X4: Lanes = Lanes(4);
    /// Eight lanes — the paper's switch upstream port width.
    pub const X8: Lanes = Lanes(8);
    /// Sixteen lanes — the paper's accelerator downstream link width.
    pub const X16: Lanes = Lanes(16);

    /// Creates a width; must be a power of two between 1 and 16.
    ///
    /// # Errors
    ///
    /// Returns an error message for invalid widths.
    pub fn new(lanes: u8) -> Result<Lanes, InvalidLanes> {
        match lanes {
            1 | 2 | 4 | 8 | 16 => Ok(Lanes(lanes)),
            other => Err(InvalidLanes(other)),
        }
    }

    /// Number of lanes.
    pub fn count(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Lanes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Error returned by [`Lanes::new`] for widths PCIe does not define.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLanes(pub u8);

impl fmt::Display for InvalidLanes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PCIe lane count: {}", self.0)
    }
}

impl std::error::Error for InvalidLanes {}

/// A PCIe link: a generation plus a width.
///
/// ```
/// use dmx_pcie::{Gen, Lanes, LinkSpec};
/// let l = LinkSpec::new(Gen::Gen4, Lanes::X8);
/// // x8 Gen4 ~ 15.75 GB/s, which the paper matches to one DDR4-3200 channel
/// assert!((l.bytes_per_sec() as f64 / 1e9 - 15.75).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkSpec {
    gen: Gen,
    lanes: Lanes,
}

impl LinkSpec {
    /// Creates a link of the given generation and width.
    pub fn new(gen: Gen, lanes: Lanes) -> LinkSpec {
        LinkSpec { gen, lanes }
    }

    /// The link's generation.
    pub fn gen(self) -> Gen {
        self.gen
    }

    /// The link's width.
    pub fn lanes(self) -> Lanes {
        self.lanes
    }

    /// Effective unidirectional data bandwidth in bytes per second.
    pub fn bytes_per_sec(self) -> u64 {
        self.gen.lane_bytes_per_sec() * self.lanes.count() as u64
    }

    /// Time to move `bytes` over this link at full rate, ignoring
    /// contention (used for lower bounds and tests).
    pub fn serial_transfer_time(self, bytes: u64) -> Time {
        transfer_time(bytes, self.bytes_per_sec())
    }

    /// Same link at a different generation (used by the Fig. 19 sweep).
    pub fn with_gen(self, gen: Gen) -> LinkSpec {
        LinkSpec { gen, ..self }
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.gen, self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_bandwidth_doubles() {
        assert_eq!(
            Gen::Gen4.lane_bytes_per_sec() / Gen::Gen3.lane_bytes_per_sec(),
            2
        );
        assert_eq!(
            Gen::Gen5.lane_bytes_per_sec() / Gen::Gen4.lane_bytes_per_sec(),
            2
        );
    }

    #[test]
    fn gen3_lane_is_about_one_gbps() {
        let b = Gen::Gen3.lane_bytes_per_sec() as f64;
        assert!((b / 1e9 - 0.9846).abs() < 0.001);
    }

    #[test]
    fn lanes_validation() {
        assert!(Lanes::new(8).is_ok());
        assert_eq!(Lanes::new(3), Err(InvalidLanes(3)));
        assert_eq!(Lanes::new(0), Err(InvalidLanes(0)));
        assert_eq!(Lanes::new(32), Err(InvalidLanes(32)));
        assert_eq!(InvalidLanes(3).to_string(), "invalid PCIe lane count: 3");
    }

    #[test]
    fn x16_gen3_bandwidth() {
        let l = LinkSpec::new(Gen::Gen3, Lanes::X16);
        assert!((l.bytes_per_sec() as f64 / 1e9 - 15.75).abs() < 0.1);
    }

    #[test]
    fn transfer_time_scales_inversely_with_gen() {
        let bytes = 8 << 20;
        let t3 = LinkSpec::new(Gen::Gen3, Lanes::X8).serial_transfer_time(bytes);
        let t5 = LinkSpec::new(Gen::Gen5, Lanes::X8).serial_transfer_time(bytes);
        let ratio = t3.as_ps() as f64 / t5.as_ps() as f64;
        assert!((ratio - 4.0).abs() < 0.01);
    }

    #[test]
    fn display_formats() {
        let l = LinkSpec::new(Gen::Gen5, Lanes::X4);
        assert_eq!(l.to_string(), "Gen5 x4");
    }
}
