//! Energy model for PCIe data movement.
//!
//! The paper's energy evaluation "include\[s\] the energy consumption of
//! the PCIe switch and the energy for data transfer over PCIe"
//! (Sec. VI). We model both: a per-bit link-crossing energy and a static
//! switch power drawn for the whole experiment.

use crate::link::Gen;
use dmx_sim::Time;

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Energy from power (watts) over a duration.
    pub fn from_power(watts: f64, t: Time) -> Joules {
        Joules(watts * t.as_secs_f64())
    }

    /// Value in joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }
}

impl std::ops::Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, std::ops::Add::add)
    }
}

/// PCIe energy parameters.
#[derive(Debug, Clone, Copy)]
pub struct PcieEnergyModel {
    /// Energy for one bit to cross one link, in picojoules. Published
    /// PHY surveys put PCIe at roughly 5 pJ/bit end to end.
    pub pj_per_bit: f64,
    /// Static power of one PCIe switch chip in watts (Microchip/Broadcom
    /// datasheet class devices draw 10-25 W; we use a mid value).
    pub switch_static_watts: f64,
}

impl Default for PcieEnergyModel {
    fn default() -> Self {
        PcieEnergyModel {
            pj_per_bit: 5.0,
            switch_static_watts: 15.0,
        }
    }
}

impl PcieEnergyModel {
    /// Energy for `bytes` to cross one link.
    pub fn transfer_energy(&self, bytes: f64) -> Joules {
        Joules(bytes * 8.0 * self.pj_per_bit * 1e-12)
    }

    /// Static energy of `switches` switch chips over `duration`.
    pub fn switch_static_energy(&self, switches: usize, duration: Time) -> Joules {
        Joules::from_power(self.switch_static_watts * switches as f64, duration)
    }

    /// Newer generations move more bits per joule; the per-bit energy
    /// improves modestly per generation (~20% per gen, per PHY surveys).
    pub fn scaled_for_gen(&self, gen: Gen) -> PcieEnergyModel {
        let factor = match gen {
            Gen::Gen3 => 1.0,
            Gen::Gen4 => 0.8,
            Gen::Gen5 => 0.64,
        };
        PcieEnergyModel {
            pj_per_bit: self.pj_per_bit * factor,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joules_arithmetic() {
        let a = Joules(1.5) + Joules(0.5);
        assert_eq!(a, Joules(2.0));
        let s: Joules = [Joules(1.0), Joules(2.0)].into_iter().sum();
        assert_eq!(s, Joules(3.0));
    }

    #[test]
    fn power_integration() {
        let e = Joules::from_power(100.0, Time::from_ms(10));
        assert!((e.as_joules() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_energy_per_gigabyte() {
        let m = PcieEnergyModel::default();
        // 1 GB at 5 pJ/bit = 1e9 * 8 * 5e-12 = 0.04 J
        let e = m.transfer_energy(1e9);
        assert!((e.as_joules() - 0.04).abs() < 1e-9);
    }

    #[test]
    fn newer_gens_cheaper_per_bit() {
        let m = PcieEnergyModel::default();
        assert!(m.scaled_for_gen(Gen::Gen5).pj_per_bit < m.scaled_for_gen(Gen::Gen4).pj_per_bit);
        assert_eq!(m.scaled_for_gen(Gen::Gen3).pj_per_bit, m.pj_per_bit);
    }

    #[test]
    fn switch_static_scales_with_count() {
        let m = PcieEnergyModel::default();
        let e1 = m.switch_static_energy(1, Time::from_secs(1));
        let e4 = m.switch_static_energy(4, Time::from_secs(1));
        assert!((e4.as_joules() / e1.as_joules() - 4.0).abs() < 1e-12);
    }
}
