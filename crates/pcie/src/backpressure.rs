//! Credit-based ingress backpressure.
//!
//! Each DRX endpoint owns a finite ingress data queue (Sec. V
//! provisions a queue pair per unit). When a producer wants to DMA a
//! batch into an endpoint, it must first reserve that many bytes of
//! ingress credit; if the queue cannot hold the batch, the transfer
//! *stalls at the source* instead of buffering unboundedly somewhere in
//! the fabric. Credits are released when the endpoint consumes the
//! batch, which wakes the oldest stalled producer that now fits. This
//! makes congestion visible end-to-end: a slow endpoint propagates
//! backpressure upstream as measurable stall time rather than silent
//! unbounded queueing.
//!
//! The gate is deliberately independent of [`crate::flow::FlowNet`]:
//! it arbitrates *whether a transfer may start*, the flow network
//! models *how fast it runs* once started.

use dmx_sim::Time;
use std::collections::{HashMap, VecDeque};

/// Opaque token a caller uses to identify a parked transfer (typically
/// its request id).
pub type CreditToken = u64;

#[derive(Debug, Clone, Default)]
struct Endpoint {
    /// Bytes of ingress queue currently reserved.
    in_use: u64,
    /// Transfers waiting for credit, oldest first.
    waiting: VecDeque<(CreditToken, u64, Time)>,
}

/// Per-endpoint byte-credit gate with FIFO wakeup and stall statistics.
///
/// Endpoints are keyed by an arbitrary `u64` (the DMX system uses its
/// stable DRX unit ids). Batches larger than the whole queue are
/// clamped to the queue size — they occupy the entire queue and stream
/// through it, which is how a real bounded queue handles an oversized
/// transfer.
///
/// ```
/// use dmx_pcie::CreditGate;
/// use dmx_sim::Time;
/// let mut g = CreditGate::new(100);
/// assert!(g.try_acquire(Time::ZERO, 1, 10, 60)); // fits
/// assert!(!g.try_acquire(Time::ZERO, 1, 11, 60)); // parked
/// let woken = g.release(Time::from_us(5), 1, 60);
/// assert_eq!(woken, vec![11]);
/// assert_eq!(g.stalls(), 1);
/// assert_eq!(g.stall_time(), Time::from_us(5));
/// ```
#[derive(Debug, Clone)]
pub struct CreditGate {
    capacity: u64,
    endpoints: HashMap<u64, Endpoint>,
    stalls: u64,
    stall_time: Time,
    peak_in_use: u64,
}

impl CreditGate {
    /// Creates a gate giving every endpoint `capacity_bytes` of ingress
    /// credit.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(capacity_bytes: u64) -> CreditGate {
        assert!(
            capacity_bytes > 0,
            "ingress queue must have nonzero capacity"
        );
        CreditGate {
            capacity: capacity_bytes,
            endpoints: HashMap::new(),
            stalls: 0,
            stall_time: Time::ZERO,
            peak_in_use: 0,
        }
    }

    /// Per-endpoint credit capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Transfers that had to stall for credit so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total time stalled transfers spent parked.
    pub fn stall_time(&self) -> Time {
        self.stall_time
    }

    /// Largest credit reservation ever observed on any endpoint.
    pub fn peak_in_use(&self) -> u64 {
        self.peak_in_use
    }

    /// Bytes currently reserved on `endpoint`.
    pub fn in_use(&self, endpoint: u64) -> u64 {
        self.endpoints.get(&endpoint).map_or(0, |e| e.in_use)
    }

    /// Transfers currently parked on `endpoint`.
    pub fn parked(&self, endpoint: u64) -> usize {
        self.endpoints.get(&endpoint).map_or(0, |e| e.waiting.len())
    }

    /// Tries to reserve `bytes` of ingress credit on `endpoint` for the
    /// transfer identified by `token`. Returns `true` when the credit
    /// was granted; otherwise the transfer is parked (FIFO) and will be
    /// returned by a future [`CreditGate::release`] once it fits.
    ///
    /// Transfers already parked on the endpoint always park behind the
    /// queue — credit is granted in arrival order, so a stream of small
    /// batches cannot starve a large one.
    pub fn try_acquire(
        &mut self,
        now: Time,
        endpoint: u64,
        token: CreditToken,
        bytes: u64,
    ) -> bool {
        let bytes = bytes.min(self.capacity).max(1);
        let ep = self.endpoints.entry(endpoint).or_default();
        if ep.waiting.is_empty() && ep.in_use + bytes <= self.capacity {
            ep.in_use += bytes;
            self.peak_in_use = self.peak_in_use.max(ep.in_use);
            true
        } else {
            ep.waiting.push_back((token, bytes, now));
            self.stalls += 1;
            false
        }
    }

    /// Returns `bytes` of credit to `endpoint` and grants credit to as
    /// many parked transfers (oldest first) as now fit. Returns the
    /// tokens of the woken transfers; the caller starts them.
    pub fn release(&mut self, now: Time, endpoint: u64, bytes: u64) -> Vec<CreditToken> {
        let bytes = bytes.min(self.capacity).max(1);
        let Some(ep) = self.endpoints.get_mut(&endpoint) else {
            return Vec::new();
        };
        ep.in_use = ep.in_use.saturating_sub(bytes);
        self.wake_fitting(now, endpoint)
    }

    /// Cancels `token`'s reservation of `bytes` on `endpoint` (the
    /// transfer's owner went away — e.g. a crashed request being
    /// migrated). A still-parked transfer leaves the wait queue without
    /// ever holding credit; a granted one returns its credit like
    /// [`CreditGate::release`]. Either way, transfers that now fit are
    /// woken and returned for the caller to start.
    pub fn cancel(
        &mut self,
        now: Time,
        endpoint: u64,
        token: CreditToken,
        bytes: u64,
    ) -> Vec<CreditToken> {
        let Some(ep) = self.endpoints.get_mut(&endpoint) else {
            return Vec::new();
        };
        if let Some(pos) = ep.waiting.iter().position(|(t, _, _)| *t == token) {
            let since = ep.waiting[pos].2;
            ep.waiting.remove(pos);
            self.stall_time += now.saturating_sub(since);
            // Removing a parked head can unblock the transfers behind
            // it (FIFO grant order no longer waits on the removed one).
            self.wake_fitting(now, endpoint)
        } else {
            self.release(now, endpoint, bytes)
        }
    }

    /// Grants credit to parked transfers (oldest first) while they fit;
    /// returns the woken tokens.
    fn wake_fitting(&mut self, now: Time, endpoint: u64) -> Vec<CreditToken> {
        let Some(ep) = self.endpoints.get_mut(&endpoint) else {
            return Vec::new();
        };
        let mut woken = Vec::new();
        while let Some(&(token, need, since)) = ep.waiting.front() {
            if ep.in_use + need > self.capacity {
                break;
            }
            ep.waiting.pop_front();
            ep.in_use += need;
            self.peak_in_use = self.peak_in_use.max(ep.in_use);
            self.stall_time += now.saturating_sub(since);
            woken.push(token);
        }
        woken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_full_then_parks() {
        let mut g = CreditGate::new(100);
        assert!(g.try_acquire(Time::ZERO, 7, 1, 40));
        assert!(g.try_acquire(Time::ZERO, 7, 2, 40));
        assert!(!g.try_acquire(Time::ZERO, 7, 3, 40));
        assert_eq!(g.in_use(7), 80);
        assert_eq!(g.parked(7), 1);
        assert_eq!(g.stalls(), 1);
    }

    #[test]
    fn release_wakes_fifo_order() {
        let mut g = CreditGate::new(100);
        assert!(g.try_acquire(Time::ZERO, 7, 1, 100));
        assert!(!g.try_acquire(Time::ZERO, 7, 2, 30));
        assert!(!g.try_acquire(Time::ZERO, 7, 3, 30));
        assert!(!g.try_acquire(Time::ZERO, 7, 4, 60));
        // 100 bytes return: 2 and 3 fit (60), 4 would overflow and must
        // wait even though it is smaller than the remaining 40.
        let woken = g.release(Time::from_us(1), 7, 100);
        assert_eq!(woken, vec![2, 3]);
        assert_eq!(g.in_use(7), 60);
        let woken = g.release(Time::from_us(2), 7, 30);
        assert_eq!(woken, vec![4]);
        assert_eq!(g.in_use(7), 90);
    }

    #[test]
    fn arrivals_park_behind_existing_queue() {
        let mut g = CreditGate::new(100);
        assert!(g.try_acquire(Time::ZERO, 7, 1, 90));
        assert!(!g.try_acquire(Time::ZERO, 7, 2, 90));
        // Would fit the 10 free bytes, but 2 is ahead in line.
        assert!(!g.try_acquire(Time::ZERO, 7, 3, 10));
        // 90 bytes return: 2 (90) is granted first, and then 3 (10)
        // fits in the remainder — both wake, in FIFO order.
        let woken = g.release(Time::from_us(1), 7, 90);
        assert_eq!(woken, vec![2, 3]);
    }

    #[test]
    fn oversized_batches_clamp_to_capacity() {
        let mut g = CreditGate::new(100);
        assert!(g.try_acquire(Time::ZERO, 7, 1, 10_000));
        assert_eq!(g.in_use(7), 100);
        assert!(!g.try_acquire(Time::ZERO, 7, 2, 1));
        let woken = g.release(Time::ZERO, 7, 10_000);
        assert_eq!(woken, vec![2]);
    }

    #[test]
    fn endpoints_are_independent() {
        let mut g = CreditGate::new(50);
        assert!(g.try_acquire(Time::ZERO, 1, 10, 50));
        assert!(g.try_acquire(Time::ZERO, 2, 20, 50));
        assert_eq!(g.in_use(1), 50);
        assert_eq!(g.in_use(2), 50);
        assert_eq!(g.peak_in_use(), 50);
    }

    #[test]
    fn stall_time_accumulates() {
        let mut g = CreditGate::new(10);
        assert!(g.try_acquire(Time::ZERO, 1, 1, 10));
        assert!(!g.try_acquire(Time::from_us(2), 1, 2, 10));
        let woken = g.release(Time::from_us(10), 1, 10);
        assert_eq!(woken, vec![1 + 1]);
        assert_eq!(g.stall_time(), Time::from_us(8));
    }

    #[test]
    fn cancel_unparks_without_releasing_credit() {
        let mut g = CreditGate::new(100);
        assert!(g.try_acquire(Time::ZERO, 7, 1, 80));
        assert!(!g.try_acquire(Time::ZERO, 7, 2, 50));
        assert!(!g.try_acquire(Time::ZERO, 7, 3, 20));
        // 2 never held credit: cancelling it must not change in_use,
        // but 3 (parked behind it) now fits the 20 free bytes.
        let woken = g.cancel(Time::from_us(1), 7, 2, 50);
        assert_eq!(woken, vec![3]);
        assert_eq!(g.in_use(7), 100);
        // 1 was granted: cancelling it behaves like release.
        let woken = g.cancel(Time::from_us(2), 7, 1, 80);
        assert!(woken.is_empty());
        assert_eq!(g.in_use(7), 20);
    }

    #[test]
    fn interleaved_park_cancel_grant_keeps_fifo_order() {
        let mut g = CreditGate::new(100);
        assert!(g.try_acquire(Time::ZERO, 7, 1, 70));
        assert!(!g.try_acquire(Time::ZERO, 7, 2, 40));
        // 3 would fit the 30 free bytes but parks behind 2.
        assert!(!g.try_acquire(Time::ZERO, 7, 3, 20));
        // Cancelling parked 2 unblocks 3 — and only 3.
        let woken = g.cancel(Time::from_us(1), 7, 2, 40);
        assert_eq!(woken, vec![3]);
        assert_eq!(g.in_use(7), 90);
        // A new arrival parks behind nothing but still lacks credit.
        assert!(!g.try_acquire(Time::from_us(2), 7, 4, 20));
        // Granted 1 cancels: like a release, oldest-first wakeup.
        let woken = g.cancel(Time::from_us(3), 7, 1, 70);
        assert_eq!(woken, vec![4]);
        assert_eq!(g.in_use(7), 40);
        assert_eq!(g.parked(7), 0);
    }

    #[test]
    fn cancel_of_granted_credit_cannot_leapfrog_queue_head() {
        let mut g = CreditGate::new(100);
        assert!(g.try_acquire(Time::ZERO, 7, 1, 50));
        assert!(g.try_acquire(Time::ZERO, 7, 2, 50));
        assert!(!g.try_acquire(Time::ZERO, 7, 3, 60));
        assert!(!g.try_acquire(Time::ZERO, 7, 4, 10));
        // 1's credit comes back, but head-of-line 3 still does not fit;
        // 4 must keep waiting behind it (no starvation of the big one).
        let woken = g.cancel(Time::from_us(1), 7, 1, 50);
        assert!(woken.is_empty());
        assert_eq!(g.in_use(7), 50);
        assert_eq!(g.parked(7), 2);
        // 2's credit completes the picture: 3 then 4, in FIFO order.
        let woken = g.release(Time::from_us(2), 7, 50);
        assert_eq!(woken, vec![3, 4]);
        assert_eq!(g.in_use(7), 70);
    }

    #[test]
    fn cancelling_parked_head_unblocks_followers_in_order() {
        let mut g = CreditGate::new(100);
        assert!(g.try_acquire(Time::ZERO, 7, 1, 90));
        assert!(!g.try_acquire(Time::ZERO, 7, 2, 80));
        assert!(!g.try_acquire(Time::ZERO, 7, 3, 5));
        assert!(!g.try_acquire(Time::ZERO, 7, 4, 5));
        let woken = g.cancel(Time::from_us(1), 7, 2, 80);
        assert_eq!(woken, vec![3, 4]);
        assert_eq!(g.in_use(7), 100);
    }

    #[test]
    fn cancelled_token_can_repark_and_regrant_once() {
        let mut g = CreditGate::new(100);
        assert!(g.try_acquire(Time::ZERO, 7, 1, 100));
        assert!(!g.try_acquire(Time::ZERO, 7, 2, 50));
        let woken = g.cancel(Time::from_us(1), 7, 2, 50);
        assert!(woken.is_empty());
        assert_eq!(g.parked(7), 0);
        // The same token parks again (a migrated request retrying) and
        // is granted exactly once.
        assert!(!g.try_acquire(Time::from_us(2), 7, 2, 50));
        let woken = g.release(Time::from_us(3), 7, 100);
        assert_eq!(woken, vec![2]);
        assert_eq!(g.in_use(7), 50);
        assert!(g.release(Time::from_us(4), 7, 50).is_empty());
        assert_eq!(g.in_use(7), 0);
    }

    #[test]
    fn cancelled_parked_transfer_still_accounts_stall_time() {
        let mut g = CreditGate::new(10);
        assert!(g.try_acquire(Time::ZERO, 1, 1, 10));
        assert!(!g.try_acquire(Time::from_us(3), 1, 2, 10));
        g.cancel(Time::from_us(7), 1, 2, 10);
        assert_eq!(g.stall_time(), Time::from_us(4));
        assert_eq!(g.stalls(), 1);
    }

    #[test]
    fn release_on_unknown_endpoint_is_noop() {
        let mut g = CreditGate::new(10);
        assert!(g.release(Time::ZERO, 99, 10).is_empty());
    }

    #[test]
    fn zero_byte_transfer_still_reserves_a_byte() {
        // A zero-byte batch must not bypass arbitration entirely: it
        // reserves the one-byte minimum so ordering stays honest.
        let mut g = CreditGate::new(10);
        assert!(g.try_acquire(Time::ZERO, 1, 1, 0));
        assert_eq!(g.in_use(1), 1);
        g.release(Time::ZERO, 1, 0);
        assert_eq!(g.in_use(1), 0);
    }
}
