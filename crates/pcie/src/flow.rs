//! Fluid-flow model of concurrent DMA transfers with max-min fair
//! bandwidth sharing.
//!
//! PCIe switches arbitrate at TLP granularity, so concurrent transfers
//! crossing a link share its bandwidth almost perfectly fairly. Instead
//! of simulating per-packet events, [`FlowNet`] models each transfer as
//! a fluid flow over its route and computes the classic *max-min fair*
//! allocation; events are only needed when a flow starts or finishes.
//! This is exact for fair arbitration and keeps event counts tiny, and
//! it is where the paper's headline contention effects (the shared x8
//! upstream link saturating in the Multi-Axl baseline, Sec. VII.A)
//! come from.

use crate::topology::{FabricError, LinkId, Route};
use dmx_sim::Time;
use std::cell::RefCell;

/// Identifier a caller assigns to a flow.
pub type FlowId = u64;

#[derive(Debug, Clone)]
struct Flow {
    id: FlowId,
    remaining: f64, // bytes
    total: f64,     // bytes at insert, for chunk-boundary observation
    links: Vec<usize>,
}

/// Reusable solver state: the memoized max-min rates plus the scratch
/// buffers `solve_rates_into` works in. Keeping them together means a
/// steady-state advance/next_event cycle allocates nothing — buffers
/// are cleared and refilled in place on each re-solve.
#[derive(Debug, Clone, Default)]
struct RateScratch {
    /// Whether `rates` reflects the current flow set and bandwidths.
    valid: bool,
    rates: Vec<f64>,
    frozen: Vec<bool>,
    cap: Vec<f64>,
    counts: Vec<u32>,
    /// Flow indices crossing each link, rebuilt per solve (ascending).
    link_members: Vec<Vec<u32>>,
    /// Cached per-link fair share (`cap / counts`, infinite when idle).
    shares: Vec<f64>,
    /// Links touched in the current round whose share needs a refresh.
    dirty: Vec<u32>,
    /// Links with unfrozen flows, ascending; compacted as counts hit
    /// zero so the per-round bottleneck scan touches only live links.
    active: Vec<u32>,
}

/// Max-min fair fluid flow network over a set of capacitated links.
///
/// Driving protocol (same pattern as `dmx_sim::PsPool`):
/// mutate → [`FlowNet::advance`] → [`FlowNet::take_finished`] →
/// [`FlowNet::next_event`] → schedule a tick tagged with
/// [`FlowNet::generation`], ignoring stale ticks.
///
/// ```
/// use dmx_pcie::{FlowNet, LinkId};
/// use dmx_sim::Time;
/// // One 10 GB/s link; two flows share it 50/50.
/// let link = LinkId::from_index(0);
/// let mut net = FlowNet::new(vec![10_000_000_000]);
/// net.insert(Time::ZERO, 1, 10_000_000_000, &[link]);
/// net.insert(Time::ZERO, 2, 10_000_000_000, &[link]);
/// // each runs at 5 GB/s -> both finish at 2s
/// assert_eq!(net.next_event(Time::ZERO), Some(Time::from_secs(2)));
/// ```
#[derive(Debug, Clone)]
pub struct FlowNet {
    link_bw: Vec<f64>, // current bytes per second (after degradations)
    base_bw: Vec<f64>, // nominal bytes per second
    /// Active degradation factors per link (stacked: overlapping
    /// retrains multiply).
    degradations: Vec<Vec<f64>>,
    flows: Vec<Flow>,
    /// Active flows crossing each link, maintained incrementally on
    /// insert/retire so the max-min solver never rebuilds it.
    link_flows: Vec<u32>,
    /// Memoized max-min rates plus solver scratch; valid until the flow
    /// set or a link bandwidth changes. The allocation itself depends
    /// only on which flows cross which links, not on remaining bytes,
    /// so it is constant between such changes.
    scratch: RefCell<RateScratch>,
    /// Retired flows' route vecs, recycled by `try_insert` so starting
    /// a flow in steady state does not allocate.
    links_pool: Vec<Vec<usize>>,
    last: Time,
    generation: u64,
    finished: Vec<FlowId>,
    /// Read cursor into `finished` for [`FlowNet::pop_finished`]; the
    /// buffer is recycled once drained instead of reallocated.
    finished_head: usize,
    link_bytes: Vec<f64>, // cumulative bytes crossing each link
    flows_completed: u64,
}

impl FlowNet {
    /// Creates a network over links with the given bandwidths in
    /// bytes/second (indexed by `LinkId::index()`).
    ///
    /// # Panics
    ///
    /// Panics if any bandwidth is zero.
    pub fn new(bandwidths: Vec<u64>) -> FlowNet {
        assert!(
            bandwidths.iter().all(|b| *b > 0),
            "links must have nonzero bandwidth"
        );
        let n = bandwidths.len();
        let bw: Vec<f64> = bandwidths.into_iter().map(|b| b as f64).collect();
        FlowNet {
            link_bw: bw.clone(),
            base_bw: bw,
            degradations: vec![Vec::new(); n],
            flows: Vec::new(),
            link_flows: vec![0; n],
            scratch: RefCell::new(RateScratch::default()),
            links_pool: Vec::new(),
            last: Time::ZERO,
            generation: 0,
            finished: Vec::new(),
            finished_head: 0,
            link_bytes: vec![0.0; n],
            flows_completed: 0,
        }
    }

    /// Drops the memoized rates; call after any change to the flow set
    /// or link bandwidths. The scratch buffers keep their capacity.
    fn invalidate_rates(&self) {
        self.scratch.borrow_mut().valid = false;
    }

    /// Re-solves into the shared scratch if the memo is stale. After
    /// this returns, `scratch.rates` holds the current allocation.
    fn ensure_rates(&self) {
        let mut s = self.scratch.borrow_mut();
        if s.valid {
            return;
        }
        self.solve_rates_into(&mut s);
        s.valid = true;
        debug_assert_eq!(
            s.rates,
            self.solve_rates_reference(),
            "incremental max-min solver diverged from reference"
        );
    }

    /// Current generation, bumped on every state change.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of flows in progress.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of flows that have completed.
    pub fn flows_completed(&self) -> u64 {
        self.flows_completed
    }

    /// Cumulative bytes that have crossed each link (for energy
    /// accounting: PCIe transfer energy is per byte per link).
    pub fn link_bytes(&self) -> &[f64] {
        &self.link_bytes
    }

    /// Max-min fair rate of every active flow, in bytes/second.
    ///
    /// Water-filling: repeatedly find the most contended link, freeze
    /// the flows crossing it at its fair share, remove their bandwidth,
    /// and continue until all flows are frozen.
    ///
    /// The allocation is memoized between state changes and re-solved
    /// incrementally from the maintained per-link flow counts; debug
    /// builds cross-check the result against the from-scratch solver.
    pub fn rates(&self) -> Vec<f64> {
        self.ensure_rates();
        self.scratch.borrow().rates.clone()
    }

    /// Standalone incremental solve into a fresh scratch (tests and the
    /// debug cross-check drive this directly).
    #[cfg(test)]
    fn solve_rates(&self) -> Vec<f64> {
        let mut s = RateScratch::default();
        self.solve_rates_into(&mut s);
        s.rates
    }

    /// Incremental water-fill: starts from the maintained per-link flow
    /// counts and decrements them as flows freeze, instead of rebuilding
    /// the count table from every flow on every bottleneck level. The
    /// arithmetic (order of subtractions, clamping) is identical to
    /// [`FlowNet::solve_rates_reference`], so the two agree bit-for-bit.
    /// Works entirely inside `s`'s buffers — no allocation once they
    /// have grown to the network's size.
    fn solve_rates_into(&self, s: &mut RateScratch) {
        let nf = self.flows.len();
        let nl = self.link_bw.len();
        s.rates.clear();
        s.rates.resize(nf, f64::INFINITY);
        s.frozen.clear();
        s.frozen.resize(nf, false);
        s.cap.clear();
        s.cap.extend_from_slice(&self.link_bw);
        s.counts.clear();
        s.counts.extend_from_slice(&self.link_flows);
        let RateScratch {
            rates,
            frozen,
            cap,
            counts,
            link_members,
            shares,
            dirty,
            active,
            ..
        } = s;
        // Per-link flow lists, ascending flow index (freeze order within
        // a round is the reference's iteration order; the float result
        // is order-independent within a round anyway, since every freeze
        // subtracts the same share).
        for list in link_members.iter_mut() {
            list.clear();
        }
        link_members.resize_with(nl, Vec::new);
        for (fi, f) in self.flows.iter().enumerate() {
            for &l in &f.links {
                link_members[l].push(fi as u32);
            }
        }
        // Cached fair share per link; recomputed only for links whose
        // cap/count changed last round. The shares a round observes are
        // exactly `cap[l] / counts[l]` with the same operands as the
        // reference, so the bottleneck choice and rates match bit-
        // for-bit.
        shares.clear();
        shares.resize(nl, f64::INFINITY);
        active.clear();
        for l in 0..nl {
            if counts[l] > 0 {
                shares[l] = cap[l] / counts[l] as f64;
                active.push(l as u32);
            }
        }
        dirty.clear();
        let mut remaining = nf;
        while remaining > 0 {
            // Most contended link among the unfrozen flows: lowest index
            // wins ties, as in the reference's forward scan. The active
            // list is compacted in the same pass — it stays ascending,
            // so the tie-break matches the reference's full scan.
            let mut bottleneck: Option<(usize, f64)> = None;
            let mut w = 0;
            for r in 0..active.len() {
                let l = active[r] as usize;
                if counts[l] > 0 {
                    active[w] = active[r];
                    w += 1;
                    let share = shares[l];
                    if bottleneck.is_none_or(|(_, s)| share < s) {
                        bottleneck = Some((l, share));
                    }
                }
            }
            active.truncate(w);
            let Some((bl, share)) = bottleneck else {
                // Remaining flows cross no links at all; they are not
                // allowed by `insert`, so this cannot happen.
                unreachable!("unfrozen flow with empty route");
            };
            for &fi in &link_members[bl] {
                let fi = fi as usize;
                if !frozen[fi] {
                    frozen[fi] = true;
                    rates[fi] = share;
                    remaining -= 1;
                    for &l in &self.flows[fi].links {
                        cap[l] -= share;
                        counts[l] -= 1;
                        dirty.push(l as u32);
                    }
                }
            }
            // Guard against negative drift from float subtraction, and
            // refresh the cached shares of the links this round touched
            // (untouched links kept their cap, count, and share).
            for &l in dirty.iter() {
                let l = l as usize;
                if cap[l] < 0.0 {
                    cap[l] = 0.0;
                }
                shares[l] = if counts[l] > 0 {
                    cap[l] / counts[l] as f64
                } else {
                    f64::INFINITY
                };
            }
            dirty.clear();
        }
    }

    /// The original from-scratch solver, kept as the debug-build
    /// reference for the incremental one.
    fn solve_rates_reference(&self) -> Vec<f64> {
        let nf = self.flows.len();
        let mut rate = vec![f64::INFINITY; nf];
        let mut frozen = vec![false; nf];
        let mut cap = self.link_bw.clone();
        let mut remaining = nf;
        while remaining > 0 {
            // Fair share of each link among its unfrozen flows.
            let mut counts = vec![0u32; cap.len()];
            for (fi, f) in self.flows.iter().enumerate() {
                if !frozen[fi] {
                    for &l in &f.links {
                        counts[l] += 1;
                    }
                }
            }
            let mut bottleneck: Option<(usize, f64)> = None;
            for (l, &c) in counts.iter().enumerate() {
                if c > 0 {
                    let share = cap[l] / c as f64;
                    if bottleneck.is_none_or(|(_, s)| share < s) {
                        bottleneck = Some((l, share));
                    }
                }
            }
            let Some((bl, share)) = bottleneck else {
                unreachable!("unfrozen flow with empty route");
            };
            for (fi, f) in self.flows.iter().enumerate() {
                if !frozen[fi] && f.links.contains(&bl) {
                    frozen[fi] = true;
                    rate[fi] = share;
                    remaining -= 1;
                    for &l in &f.links {
                        cap[l] -= share;
                    }
                }
            }
            for c in &mut cap {
                if *c < 0.0 {
                    *c = 0.0;
                }
            }
        }
        rate
    }

    /// Advances accounting to `now`, moving fluid at the current rates
    /// and retiring flows whose bytes are exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the previous advance.
    pub fn advance(&mut self, now: Time) {
        assert!(now >= self.last, "FlowNet advanced backwards");
        let dt = (now - self.last).as_secs_f64();
        self.last = now;
        if dt == 0.0 || self.flows.is_empty() {
            return;
        }
        // Borrow the memoized rates out of the scratch cell for the
        // duration of the fluid update (no clone), then hand the buffer
        // back. Nothing can observe the cell in between.
        self.ensure_rates();
        let rates = std::mem::take(&mut self.scratch.borrow_mut().rates);
        for (f, r) in self.flows.iter_mut().zip(&rates) {
            let moved = (r * dt).min(f.remaining);
            f.remaining -= moved;
            for &l in &f.links {
                self.link_bytes[l] += moved;
            }
        }
        self.scratch.borrow_mut().rates = rates;
        // Finished when less than one byte remains: completion events
        // are rounded up to whole picoseconds, which absorbs float error.
        // Retired ids go straight onto `finished` (same FIFO order as
        // the retain visit) and their route vecs back into the pool.
        let before = self.flows.len();
        let link_flows = &mut self.link_flows;
        let finished = &mut self.finished;
        let pool = &mut self.links_pool;
        self.flows.retain_mut(|f| {
            if f.remaining < 1.0 {
                for &l in &f.links {
                    link_flows[l] -= 1;
                }
                finished.push(f.id);
                let mut links = std::mem::take(&mut f.links);
                links.clear();
                pool.push(links);
                false
            } else {
                true
            }
        });
        let retired = before - self.flows.len();
        if retired > 0 {
            self.flows_completed += retired as u64;
            self.generation += 1;
            self.invalidate_rates();
        }
    }

    /// Temporarily degrades a link's bandwidth by `scale` (a link
    /// retrain after an error burst). Degradations stack: overlapping
    /// retrains multiply. Pair every call with [`FlowNet::restore_link`].
    ///
    /// # Panics
    ///
    /// Panics if the link is unknown, `scale` is not in `(0, 1]`, or
    /// `now` is before the previous advance.
    pub fn degrade_link(&mut self, now: Time, link: LinkId, scale: f64) {
        let l = link.index();
        assert!(l < self.link_bw.len(), "degrading unknown link");
        assert!(
            scale > 0.0 && scale <= 1.0,
            "degradation scale must be in (0, 1]"
        );
        self.advance(now);
        self.degradations[l].push(scale);
        self.recompute_link(l);
        self.generation += 1;
    }

    /// Lifts the oldest active degradation of `link` (retrain done).
    /// A no-op if the link is not degraded.
    ///
    /// # Panics
    ///
    /// Panics if the link is unknown or `now` is before the previous
    /// advance.
    pub fn restore_link(&mut self, now: Time, link: LinkId) {
        let l = link.index();
        assert!(l < self.link_bw.len(), "restoring unknown link");
        self.advance(now);
        if self.degradations[l].is_empty() {
            return;
        }
        self.degradations[l].remove(0);
        self.recompute_link(l);
        self.generation += 1;
    }

    /// Number of links currently running degraded.
    pub fn degraded_links(&self) -> usize {
        self.degradations.iter().filter(|d| !d.is_empty()).count()
    }

    fn recompute_link(&mut self, l: usize) {
        // Recompute from the nominal rate so repeated degrade/restore
        // cycles never accumulate float drift.
        self.link_bw[l] = self.degradations[l]
            .iter()
            .fold(self.base_bw[l], |bw, s| bw * s);
        self.invalidate_rates();
    }

    /// Starts a flow of `bytes` over `route_links`. The network must be
    /// advanced to `now` first (or `insert` does it for you).
    ///
    /// # Panics
    ///
    /// Panics if the route is empty or references an unknown link; use
    /// [`FlowNet::try_insert`] to handle those as errors.
    pub fn insert(&mut self, now: Time, id: FlowId, bytes: u64, route_links: &[LinkId]) {
        if let Err(e) = self.try_insert(now, id, bytes, route_links) {
            panic!("FlowNet::insert({id:?}, {bytes} B) failed: {e}");
        }
    }

    /// Fallible variant of [`FlowNet::insert`].
    pub fn try_insert(
        &mut self,
        now: Time,
        id: FlowId,
        bytes: u64,
        route_links: &[LinkId],
    ) -> Result<(), FabricError> {
        if route_links.is_empty() {
            return Err(FabricError::EmptyRoute);
        }
        let mut links = self.links_pool.pop().unwrap_or_default();
        links.extend(route_links.iter().map(|l| l.index()));
        for (&l, &lid) in links.iter().zip(route_links) {
            if l >= self.link_bw.len() {
                links.clear();
                self.links_pool.push(links);
                return Err(FabricError::UnknownLink(lid));
            }
        }
        self.advance(now);
        if bytes == 0 {
            links.clear();
            self.links_pool.push(links);
            self.finished.push(id);
            self.flows_completed += 1;
        } else {
            for &l in &links {
                self.link_flows[l] += 1;
            }
            self.flows.push(Flow {
                id,
                remaining: bytes as f64,
                total: bytes as f64,
                links,
            });
            self.invalidate_rates();
        }
        self.generation += 1;
        Ok(())
    }

    /// Kills every in-flight flow crossing any of `links` (surprise
    /// device removal: the DMA engine on one side of the transfer no
    /// longer exists). Accounting is advanced to `now` first, so bytes
    /// already moved stay counted; the aborted flows are *not* reported
    /// by [`FlowNet::take_finished`] — their ids are returned here for
    /// the caller to unwind.
    pub fn abort_flows(&mut self, now: Time, links: &[LinkId]) -> Vec<FlowId> {
        self.advance(now);
        let dead: Vec<usize> = links.iter().map(|l| l.index()).collect();
        let link_flows = &mut self.link_flows;
        let pool = &mut self.links_pool;
        let mut aborted: Vec<FlowId> = Vec::new();
        self.flows.retain_mut(|f| {
            if f.links.iter().any(|l| dead.contains(l)) {
                for &l in &f.links {
                    link_flows[l] -= 1;
                }
                aborted.push(f.id);
                let mut route = std::mem::take(&mut f.links);
                route.clear();
                pool.push(route);
                false
            } else {
                true
            }
        });
        if !aborted.is_empty() {
            self.generation += 1;
            self.invalidate_rates();
        }
        aborted
    }

    /// Convenience: inserts a flow along a [`Route`].
    pub fn insert_route(&mut self, now: Time, id: FlowId, bytes: u64, route: &Route) {
        self.insert(now, id, bytes, &route.links);
    }

    /// Drains flows that completed since the last call.
    pub fn take_finished(&mut self) -> Vec<FlowId> {
        let out = self.finished.split_off(self.finished_head);
        self.finished.clear();
        self.finished_head = 0;
        out
    }

    /// Pops the next completed flow in completion (FIFO) order, or
    /// `None` when the pending set is drained. The allocation-free
    /// equivalent of [`FlowNet::take_finished`]: the completion buffer
    /// is recycled once empty, so steady-state draining never allocates.
    pub fn pop_finished(&mut self) -> Option<FlowId> {
        if self.finished_head < self.finished.len() {
            let id = self.finished[self.finished_head];
            self.finished_head += 1;
            Some(id)
        } else {
            self.finished.clear();
            self.finished_head = 0;
            None
        }
    }

    /// Absolute time of the next flow completion at current rates, or
    /// `None` when idle.
    pub fn next_event(&self, now: Time) -> Option<Time> {
        if self.flows.is_empty() {
            return None;
        }
        self.ensure_rates();
        let s = self.scratch.borrow();
        let mut best = f64::INFINITY;
        for (f, r) in self.flows.iter().zip(&s.rates) {
            if *r > 0.0 {
                best = best.min(f.remaining / r);
            }
        }
        if !best.is_finite() {
            return None;
        }
        let dt = Time::from_secs_f64(best).max(Time::from_ps(1));
        Some((self.last + dt).max(now))
    }

    /// Absolute time strictly after `now` at which any active flow
    /// crosses its next `chunk_bytes` delivery boundary, or `None`
    /// when no crossing is pending.
    ///
    /// This is a *pure observation*: it mutates nothing, and in
    /// particular does not advance the fluid accounting, so a caller
    /// materializing per-chunk progress events observes exactly the
    /// state the fast-forwarded (single completion event) run computes.
    /// Each flow's delivery position is derived in closed form from the
    /// anchor state of the last real mutation (`advance`/insert/retire/
    /// degrade): `delivered(t) = (total - remaining) + rate * (t -
    /// last)`. Any flow-set or bandwidth change moves the anchor and
    /// bumps [`FlowNet::generation`], so chunk events scheduled against
    /// a stale anchor can be recognized and dropped.
    pub fn next_chunk_event(&self, now: Time, chunk_bytes: u64) -> Option<Time> {
        if self.flows.is_empty() || chunk_bytes == 0 {
            return None;
        }
        let chunk = chunk_bytes as f64;
        let horizon = (now - self.last).as_secs_f64();
        self.ensure_rates();
        let s = self.scratch.borrow();
        let mut best = f64::INFINITY;
        for (f, r) in self.flows.iter().zip(&s.rates) {
            if *r <= 0.0 {
                continue;
            }
            // First whole-chunk boundary still ahead of the flow's
            // position at `now` (delivery is linear between anchors).
            let delivered_now = (f.total - f.remaining) + r * horizon;
            let k = (delivered_now / chunk).floor() + 1.0;
            let target = k * chunk;
            if target >= f.total {
                // The tail is the completion event's job, not a chunk's.
                continue;
            }
            let dt = (target - (f.total - f.remaining)) / r;
            best = best.min(dt);
        }
        if !best.is_finite() {
            return None;
        }
        let dt = Time::from_secs_f64(best).max(Time::from_ps(1));
        let t = self.last + dt;
        // Strictly-after guarantee: a tick delivered exactly on a
        // boundary must not reschedule itself at the same instant.
        Some(t.max(now + Time::from_ps(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(i: usize) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn single_flow_full_rate() {
        let mut net = FlowNet::new(vec![1_000_000_000]);
        net.insert(Time::ZERO, 1, 500_000_000, &[lid(0)]);
        assert_eq!(net.next_event(Time::ZERO), Some(Time::from_ms(500)));
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FlowNet::new(vec![1_000_000_000]);
        net.insert(Time::ZERO, 1, 1_000_000_000, &[lid(0)]);
        net.insert(Time::ZERO, 2, 1_000_000_000, &[lid(0)]);
        let t = net.next_event(Time::ZERO).unwrap();
        assert_eq!(t, Time::from_secs(2));
        net.advance(t);
        let mut done = net.take_finished();
        done.sort_unstable();
        assert_eq!(done, vec![1, 2]);
    }

    #[test]
    fn bottleneck_determines_rate() {
        // Flow over links 0 (fast) and 1 (slow).
        let mut net = FlowNet::new(vec![10_000_000_000, 1_000_000_000]);
        net.insert(Time::ZERO, 1, 1_000_000_000, &[lid(0), lid(1)]);
        assert_eq!(net.next_event(Time::ZERO), Some(Time::from_secs(1)));
    }

    #[test]
    fn max_min_unfreezes_leftover_bandwidth() {
        // Link 0: 10 GB/s shared by flows A and B; flow B also crosses
        // link 1 at 2 GB/s. Max-min: B is capped at 2, A gets 8.
        let mut net = FlowNet::new(vec![10_000_000_000, 2_000_000_000]);
        net.insert(Time::ZERO, 1, 8_000_000_000, &[lid(0)]);
        net.insert(Time::ZERO, 2, 2_000_000_000, &[lid(0), lid(1)]);
        let rates = net.rates();
        assert!((rates[0] - 8e9).abs() < 1.0);
        assert!((rates[1] - 2e9).abs() < 1.0);
        // Both finish at exactly 1s.
        assert_eq!(net.next_event(Time::ZERO), Some(Time::from_secs(1)));
    }

    #[test]
    fn departures_speed_up_survivors() {
        let mut net = FlowNet::new(vec![1_000_000_000]);
        net.insert(Time::ZERO, 1, 500_000_000, &[lid(0)]);
        net.insert(Time::ZERO, 2, 1_500_000_000, &[lid(0)]);
        // Shared until flow 1 finishes at t=1s (500M at 0.5 GB/s).
        let t1 = net.next_event(Time::ZERO).unwrap();
        assert_eq!(t1, Time::from_secs(1));
        net.advance(t1);
        assert_eq!(net.take_finished(), vec![1]);
        // Flow 2 has 1.0 GB left, now at full 1 GB/s -> finishes at 2s.
        let t2 = net.next_event(t1).unwrap();
        assert_eq!(t2, Time::from_secs(2));
    }

    #[test]
    fn staggered_arrival() {
        let mut net = FlowNet::new(vec![1_000_000_000]);
        net.insert(Time::ZERO, 1, 1_000_000_000, &[lid(0)]);
        // After 0.5s, flow 1 has 500MB left; flow 2 arrives.
        net.insert(Time::from_ms(500), 2, 500_000_000, &[lid(0)]);
        // Both now at 0.5 GB/s: flow 1 needs 1s more, flow 2 needs 1s.
        let t = net.next_event(Time::from_ms(500)).unwrap();
        assert_eq!(t, Time::from_ms(1500));
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net = FlowNet::new(vec![1_000_000_000]);
        net.insert(Time::ZERO, 9, 0, &[lid(0)]);
        assert_eq!(net.take_finished(), vec![9]);
        assert_eq!(net.next_event(Time::ZERO), None);
    }

    #[test]
    fn link_byte_accounting() {
        let mut net = FlowNet::new(vec![1_000_000_000, 1_000_000_000]);
        net.insert(Time::ZERO, 1, 1_000_000, &[lid(0), lid(1)]);
        let t = net.next_event(Time::ZERO).unwrap();
        net.advance(t);
        assert!((net.link_bytes()[0] - 1e6).abs() < 1.0);
        assert!((net.link_bytes()[1] - 1e6).abs() < 1.0);
        assert_eq!(net.flows_completed(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_route_rejected() {
        let mut net = FlowNet::new(vec![1_000_000_000]);
        net.insert(Time::ZERO, 1, 10, &[]);
    }

    #[test]
    fn degraded_link_slows_flows_until_restored() {
        let mut net = FlowNet::new(vec![1_000_000_000]);
        net.insert(Time::ZERO, 1, 1_500_000_000, &[lid(0)]);
        // Halve the link for the first second: only 500 MB moves.
        net.degrade_link(Time::ZERO, lid(0), 0.5);
        assert_eq!(net.degraded_links(), 1);
        assert_eq!(net.rates(), vec![500_000_000.0]);
        net.restore_link(Time::from_secs(1), lid(0));
        assert_eq!(net.degraded_links(), 0);
        // 1.0 GB left at the full 1 GB/s -> finishes at t=2s.
        assert_eq!(net.next_event(Time::from_secs(1)), Some(Time::from_secs(2)));
    }

    #[test]
    fn overlapping_degradations_stack_and_unwind() {
        let mut net = FlowNet::new(vec![1_000_000_000]);
        net.insert(Time::ZERO, 1, u64::MAX / 2, &[lid(0)]);
        net.degrade_link(Time::ZERO, lid(0), 0.5);
        net.degrade_link(Time::ZERO, lid(0), 0.5);
        assert_eq!(net.rates(), vec![250_000_000.0]);
        net.restore_link(Time::ZERO, lid(0));
        assert_eq!(net.rates(), vec![500_000_000.0]);
        net.restore_link(Time::ZERO, lid(0));
        assert_eq!(net.rates(), vec![1_000_000_000.0]);
        // Extra restore is a no-op, and rates stay exactly nominal.
        net.restore_link(Time::ZERO, lid(0));
        assert_eq!(net.rates(), vec![1_000_000_000.0]);
    }

    #[test]
    fn abort_kills_crossing_flows_and_frees_bandwidth() {
        let mut net = FlowNet::new(vec![1_000_000_000, 1_000_000_000]);
        net.insert(Time::ZERO, 1, 1_000_000_000, &[lid(0)]);
        net.insert(Time::ZERO, 2, 1_000_000_000, &[lid(0), lid(1)]);
        net.insert(Time::ZERO, 3, 1_000_000_000, &[lid(1)]);
        // Abort link 1 at t=0.5s: flows 2 and 3 die, flow 1 survives.
        let gen_before = net.generation();
        let mut dead = net.abort_flows(Time::from_ms(500), &[lid(1)]);
        dead.sort_unstable();
        assert_eq!(dead, vec![2, 3]);
        assert_eq!(net.active_flows(), 1);
        assert!(net.generation() > gen_before);
        // Aborted flows never surface as finished.
        assert!(net.take_finished().is_empty());
        // Bytes moved before the abort stay accounted on every link.
        assert!(net.link_bytes()[1] > 0.0);
        // Flow 1 now runs alone at the full 1 GB/s: 750 MB left after
        // sharing link 0 for 0.5s -> finishes at 1.25s.
        assert_eq!(
            net.next_event(Time::from_ms(500)),
            Some(Time::from_ms(1250))
        );
        net.advance(Time::from_ms(1250));
        assert_eq!(net.take_finished(), vec![1]);
        // Aborting with no crossing flows is a clean no-op.
        let g = net.generation();
        assert!(net.abort_flows(Time::from_ms(1250), &[lid(1)]).is_empty());
        assert_eq!(net.generation(), g);
    }

    #[test]
    fn try_insert_reports_errors() {
        use crate::topology::FabricError;
        let mut net = FlowNet::new(vec![1_000_000_000]);
        assert_eq!(
            net.try_insert(Time::ZERO, 1, 10, &[]),
            Err(FabricError::EmptyRoute)
        );
        assert_eq!(
            net.try_insert(Time::ZERO, 1, 10, &[lid(7)]),
            Err(FabricError::UnknownLink(lid(7)))
        );
        // Failed inserts leave the network untouched.
        assert_eq!(net.active_flows(), 0);
        assert_eq!(net.generation(), 0);
        assert!(net.try_insert(Time::ZERO, 1, 10, &[lid(0)]).is_ok());
        assert_eq!(net.active_flows(), 1);
    }

    #[test]
    fn pop_finished_matches_take_finished_order() {
        let mut net = FlowNet::new(vec![1_000_000_000]);
        net.insert(Time::ZERO, 7, 0, &[lid(0)]);
        net.insert(Time::ZERO, 8, 0, &[lid(0)]);
        net.insert(Time::ZERO, 9, 500_000_000, &[lid(0)]);
        assert_eq!(net.pop_finished(), Some(7));
        assert_eq!(net.pop_finished(), Some(8));
        assert_eq!(net.pop_finished(), None);
        let t = net.next_event(Time::ZERO).unwrap();
        net.advance(t);
        // Mixing the two drain styles stays consistent.
        assert_eq!(net.take_finished(), vec![9]);
        assert_eq!(net.pop_finished(), None);
    }

    #[test]
    fn incremental_solver_matches_reference_on_random_histories() {
        use dmx_sim::{cases, run_cases};
        // Drive random arrival / completion / degrade / restore
        // sequences and demand the incremental water-fill agree
        // bit-for-bit with the from-scratch reference after every
        // mutation (stronger than the debug_assert in `rates`, which
        // only fires on cache misses and only in debug builds).
        run_cases("flow::incremental_vs_reference", cases(40), |g| {
            let nl = g.usize_in(1, 5);
            let bw: Vec<u64> = (0..nl).map(|_| g.u64_in(1, 11) * 100_000_000).collect();
            let mut net = FlowNet::new(bw);
            let mut now = Time::ZERO;
            let mut next_id = 0u64;
            for _ in 0..g.usize_in(5, 40) {
                match g.usize_in(0, 10) {
                    // Mostly arrivals, so contention actually builds up.
                    0..=4 => {
                        let mut links: Vec<LinkId> =
                            (0..nl).filter(|_| g.chance(0.6)).map(lid).collect();
                        if links.is_empty() {
                            links.push(lid(g.usize_in(0, nl)));
                        }
                        let bytes = g.u64_in(1, 2_000_000_000);
                        net.insert(now, next_id, bytes, &links);
                        next_id += 1;
                    }
                    // Jump to the next completion (exercises retire).
                    5..=6 => {
                        if let Some(t) = net.next_event(now) {
                            now = t;
                            net.advance(now);
                            net.take_finished();
                        }
                    }
                    // A partial advance that retires nothing for sure.
                    7 => {
                        now += Time::from_ps(g.u64_in(1, 1_000_000));
                        net.advance(now);
                        net.take_finished();
                    }
                    8 => net.degrade_link(now, lid(g.usize_in(0, nl)), g.f64_in(0.1, 1.0)),
                    _ => net.restore_link(now, lid(g.usize_in(0, nl))),
                }
                if net.active_flows() > 0 {
                    let fast = net.solve_rates();
                    let reference = net.solve_rates_reference();
                    assert_eq!(fast, reference, "solvers diverged");
                    assert_eq!(net.rates(), fast, "memoized rates stale");
                }
            }
        });
    }

    #[test]
    fn link_flow_counts_stay_consistent() {
        use dmx_sim::{cases, run_cases};
        // The incrementally maintained per-link counts must equal a
        // recount from the live flow set at any point in a history.
        run_cases("flow::link_counts", cases(40), |g| {
            let nl = g.usize_in(1, 4);
            let mut net = FlowNet::new(vec![1_000_000_000; nl]);
            let mut now = Time::ZERO;
            for id in 0..g.u64_in(3, 25) {
                if g.chance(0.7) {
                    let links: Vec<LinkId> = vec![lid(g.usize_in(0, nl))];
                    net.insert(now, id, g.u64_in(0, 1_000_000_000), &links);
                } else if let Some(t) = net.next_event(now) {
                    now = t;
                    net.advance(now);
                    net.take_finished();
                }
                let mut recount = vec![0u32; nl];
                for f in &net.flows {
                    for &l in &f.links {
                        recount[l] += 1;
                    }
                }
                assert_eq!(net.link_flows, recount, "link counts drifted");
            }
        });
    }

    #[test]
    fn chunk_events_walk_boundaries_without_mutation() {
        // 1 MB over a 1 MB/s link with 256 KB chunks: boundaries at
        // 0.25s, 0.5s, 0.75s; the 1.0s tail belongs to the completion.
        let chunk = 256 * 1024;
        let mut net = FlowNet::new(vec![1_048_576]);
        net.insert(Time::ZERO, 1, 1_048_576, &[lid(0)]);
        let gen = net.generation();
        let mut now = Time::ZERO;
        let mut ticks = Vec::new();
        while let Some(t) = net.next_chunk_event(now, chunk) {
            ticks.push(t);
            now = t;
            assert!(ticks.len() < 10, "chunk ticks must terminate");
        }
        assert_eq!(ticks.len(), 3);
        assert_eq!(ticks[0], Time::from_ms(250));
        assert_eq!(ticks[1], Time::from_ms(500));
        assert_eq!(ticks[2], Time::from_ms(750));
        // Observation only: no state moved, no generation bump.
        assert_eq!(net.generation(), gen);
        assert_eq!(net.active_flows(), 1);
        assert_eq!(net.next_event(now), Some(Time::from_secs(1)));
    }

    #[test]
    fn chunk_events_follow_rate_changes() {
        // Two flows share the link: boundaries land at half speed.
        let chunk = 500_000;
        let mut net = FlowNet::new(vec![1_000_000]);
        net.insert(Time::ZERO, 1, 1_000_000, &[lid(0)]);
        net.insert(Time::ZERO, 2, 2_000_000, &[lid(0)]);
        // Each runs at 500 KB/s; flow 1's 500 KB boundary is its only
        // interior one (total 1 MB), reached at t=1s.
        assert_eq!(
            net.next_chunk_event(Time::ZERO, chunk),
            Some(Time::from_secs(1))
        );
        // Sub-chunk transfers produce no chunk events at all.
        let mut small = FlowNet::new(vec![1_000_000]);
        small.insert(Time::ZERO, 1, 100_000, &[lid(0)]);
        assert_eq!(small.next_chunk_event(Time::ZERO, chunk), None);
        assert_eq!(small.next_chunk_event(Time::ZERO, 0), None);
    }

    #[test]
    fn rates_never_oversubscribe_links() {
        // Randomized-ish structural check over a fixed scenario set.
        let mut net = FlowNet::new(vec![3_000_000_000, 1_000_000_000, 2_000_000_000]);
        let routes: Vec<Vec<LinkId>> = vec![
            vec![lid(0)],
            vec![lid(0), lid(1)],
            vec![lid(1), lid(2)],
            vec![lid(0), lid(2)],
            vec![lid(2)],
        ];
        for (i, r) in routes.iter().enumerate() {
            net.insert(Time::ZERO, i as u64, 1_000_000_000, r);
        }
        let rates = net.rates();
        let mut per_link = [0.0f64; 3];
        for (f, r) in routes.iter().zip(&rates) {
            for l in f {
                per_link[l.index()] += r;
            }
        }
        assert!(per_link[0] <= 3e9 * (1.0 + 1e-9));
        assert!(per_link[1] <= 1e9 * (1.0 + 1e-9));
        assert!(per_link[2] <= 2e9 * (1.0 + 1e-9));
        // Every flow gets a nonzero rate (work conservation).
        assert!(rates.iter().all(|r| *r > 0.0));
    }
}
