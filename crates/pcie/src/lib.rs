//! # dmx-pcie — PCIe fabric model
//!
//! Everything the DMX system simulator needs to know about PCIe:
//!
//! * [`LinkSpec`] — generation × lane-width bandwidth math
//!   (Gen3/4/5, x1..x16, 128b/130b encoding);
//! * [`Topology`] — the device tree (root complex, switches,
//!   bump-in-the-wire muxes, endpoint devices) with tree routing and the
//!   110 ns switch port-to-port latency the paper charges per traversal;
//! * [`FlowNet`] — a max-min fair fluid model of concurrent DMA
//!   transfers, which is where PCIe bandwidth contention (the Multi-Axl
//!   baseline's bottleneck) emerges;
//! * [`PcieEnergyModel`] — per-bit transfer energy and switch static
//!   power for the Fig. 15 energy comparison.
//!
//! ## Example
//!
//! ```
//! use dmx_pcie::{FlowNet, Gen, Lanes, LinkSpec, NodeKind, Topology};
//! use dmx_sim::Time;
//!
//! // A server: root complex, one switch, two accelerators.
//! let mut topo = Topology::new();
//! let sw = topo.add_node(NodeKind::Switch, "sw", topo.root(),
//!                        LinkSpec::new(Gen::Gen3, Lanes::X8));
//! let a = topo.add_node(NodeKind::Device, "a", sw,
//!                       LinkSpec::new(Gen::Gen3, Lanes::X16));
//! let b = topo.add_node(NodeKind::Device, "b", sw,
//!                       LinkSpec::new(Gen::Gen3, Lanes::X16));
//!
//! // Move 1 MiB from a to b: two x16 hops under the switch.
//! let route = topo.route(a, b);
//! let mut net = FlowNet::new(topo.link_bandwidths());
//! net.insert_route(Time::ZERO, 1, 1 << 20, &route);
//! let done = net.next_event(Time::ZERO).unwrap() + route.latency;
//! assert!(done > Time::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backpressure;
pub mod energy;
pub mod flow;
pub mod internode;
pub mod link;
pub mod replay;
pub mod topology;

pub use backpressure::{CreditGate, CreditToken};
pub use energy::{Joules, PcieEnergyModel};
pub use flow::{FlowId, FlowNet};
pub use internode::{InterNodeFabric, InterNodeLink, LinkOutage};
pub use link::{Gen, InvalidLanes, Lanes, LinkSpec};
pub use replay::{transfer_faults, ReplayParams, TransferFaults};
pub use topology::{FabricError, LinkId, NodeId, NodeKind, Route, Topology};
