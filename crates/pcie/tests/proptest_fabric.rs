//! Property-based tests of the PCIe fabric: routing on random trees and
//! max-min fairness of the flow network, on the in-tree deterministic
//! harness (`dmx_sim::check`).

use dmx_pcie::{FlowNet, Gen as PcieGen, Lanes, LinkSpec, NodeId, NodeKind, Topology};
use dmx_sim::{cases, run_cases, Time};

fn n_cases() -> usize {
    cases(if cfg!(feature = "heavy-tests") {
        512
    } else {
        64
    })
}

/// Builds a random two-level tree: one switch per entry of
/// `switch_sizes` under the root, each with that many devices.
fn random_tree(switch_sizes: &[usize]) -> (Topology, Vec<NodeId>) {
    let mut topo = Topology::new();
    let up = LinkSpec::new(PcieGen::Gen3, Lanes::X8);
    let down = LinkSpec::new(PcieGen::Gen3, Lanes::X16);
    let mut devices = Vec::new();
    for (i, &n) in switch_sizes.iter().enumerate() {
        let sw = topo.add_node(NodeKind::Switch, format!("sw{i}"), topo.root(), up);
        for j in 0..n {
            devices.push(topo.add_node(NodeKind::Device, format!("d{i}.{j}"), sw, down));
        }
    }
    (topo, devices)
}

/// Tree routes are symmetric in length and latency, stay within the
/// link table, and the same-switch/cross-switch hop counts are exactly
/// 2 and 4.
#[test]
fn routes_on_random_trees() {
    run_cases("pcie::routes_on_random_trees", n_cases(), |g| {
        let sizes = g.vec(1, 5, |g| g.usize_in(1, 5));
        let (topo, devices) = random_tree(&sizes);
        let a = devices[g.usize_in(0, 100) % devices.len()];
        let b = devices[g.usize_in(0, 100) % devices.len()];
        let fwd = topo.route(a, b);
        let back = topo.route(b, a);
        assert_eq!(fwd.hop_count(), back.hop_count());
        assert_eq!(fwd.latency, back.latency);
        for l in &fwd.links {
            assert!(l.index() < topo.link_count());
        }
        if a == b {
            assert_eq!(fwd.hop_count(), 0);
        } else {
            let same_switch = topo.parent(a).map(|(p, _)| p) == topo.parent(b).map(|(p, _)| p);
            assert_eq!(fwd.hop_count(), if same_switch { 2 } else { 4 });
        }
    });
}

/// Max-min rates never oversubscribe a link, are work-conserving on the
/// bottleneck, and every flow eventually finishes with all its bytes
/// accounted on every link it crossed.
#[test]
fn flow_network_fairness_and_conservation() {
    run_cases("pcie::flow_fairness_conservation", n_cases(), |g| {
        let bws = g.vec(1, 6, |g| g.u64_in(1_000, 1_000_000));
        let flows = g.vec(1, 8, |g| {
            (g.u64_in(1, 500_000), g.vec(1, 4, |g| g.usize_in(0, 6)))
        });
        let nlinks = bws.len();
        let mut net = FlowNet::new(bws.clone());
        let mut valid = Vec::new();
        for (i, (bytes, raw_route)) in flows.iter().enumerate() {
            let mut route: Vec<dmx_pcie::LinkId> = raw_route
                .iter()
                .map(|r| dmx_pcie::LinkId::from_index(r % nlinks))
                .collect();
            route.dedup();
            net.insert(Time::ZERO, i as u64, *bytes, &route);
            valid.push((i as u64, *bytes, route));
        }
        // Rate feasibility at the initial allocation.
        let rates = net.rates();
        let mut per_link = vec![0.0f64; nlinks];
        for ((_, _, route), r) in valid.iter().zip(&rates) {
            for l in route {
                per_link[l.index()] += r;
            }
        }
        for (l, used) in per_link.iter().enumerate() {
            assert!(
                *used <= bws[l] as f64 * (1.0 + 1e-6),
                "link {l} oversubscribed"
            );
        }
        // Run to completion.
        let mut done = net.take_finished().len();
        let mut guard = 0;
        let mut now = Time::ZERO;
        while done < valid.len() {
            now = net.next_event(now).expect("flows pending");
            net.advance(now);
            done += net.take_finished().len();
            guard += 1;
            assert!(guard < 10_000, "network did not drain");
        }
        // Byte conservation per link.
        let mut expect = vec![0.0f64; nlinks];
        for (_, bytes, route) in &valid {
            for l in route {
                expect[l.index()] += *bytes as f64;
            }
        }
        for (got, want) in net.link_bytes().iter().zip(&expect) {
            assert!((got - want).abs() <= want * 1e-6 + 1.0, "{got} vs {want}");
        }
    });
}

/// A single flow's completion time equals bytes / bottleneck bandwidth
/// regardless of the rest of the route.
#[test]
fn single_flow_bottleneck_exact() {
    run_cases("pcie::single_flow_bottleneck", n_cases(), |g| {
        let bws = g.vec(1, 5, |g| g.u64_in(10_000, 10_000_000));
        let bytes = g.u64_in(1, 50_000_000);
        let route: Vec<dmx_pcie::LinkId> =
            (0..bws.len()).map(dmx_pcie::LinkId::from_index).collect();
        let bottleneck = *bws.iter().min().expect("nonempty");
        let mut net = FlowNet::new(bws);
        net.insert(Time::ZERO, 1, bytes, &route);
        let done = net.next_event(Time::ZERO).expect("flow pending");
        let ideal = bytes as f64 / bottleneck as f64;
        let got = done.as_secs_f64();
        assert!(
            (got - ideal).abs() <= ideal * 1e-6 + 1e-9,
            "{got} vs {ideal}"
        );
    });
}
