//! RAPL-style package energy model for the host CPU (the paper
//! measures CPU energy with Intel RAPL, Sec. VI).

/// Package power parameters for a Xeon Platinum 8260L-class socket.
#[derive(Debug, Clone, Copy)]
pub struct CpuEnergyModel {
    /// Package power with all cores idle (uncore, caches, fabric), watts.
    pub idle_watts: f64,
    /// Additional power per fully-busy core, watts.
    pub active_watts_per_core: f64,
}

impl Default for CpuEnergyModel {
    fn default() -> Self {
        // 165 W TDP socket: ~55 W uncore/idle, ~7 W per busy core
        // running AVX-heavy streaming code.
        CpuEnergyModel {
            idle_watts: 55.0,
            active_watts_per_core: 7.0,
        }
    }
}

impl CpuEnergyModel {
    /// Joules consumed over `wall_secs` of which `busy_core_secs`
    /// core-seconds were spent computing.
    pub fn energy(&self, wall_secs: f64, busy_core_secs: f64) -> f64 {
        self.idle_watts * wall_secs + self.active_watts_per_core * busy_core_secs
    }

    /// Package power when `cores` cores are busy.
    pub fn power(&self, cores: f64) -> f64 {
        self.idle_watts + self.active_watts_per_core * cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_loaded_socket_near_tdp() {
        let m = CpuEnergyModel::default();
        let p = m.power(16.0);
        assert!(p > 140.0 && p < 200.0, "full-socket power {p} W");
    }

    #[test]
    fn energy_integrates_busy_time() {
        let m = CpuEnergyModel::default();
        let e = m.energy(2.0, 8.0);
        assert!((e - (2.0 * 55.0 + 8.0 * 7.0)).abs() < 1e-9);
    }

    #[test]
    fn idle_still_burns_power() {
        let m = CpuEnergyModel::default();
        assert!(m.energy(1.0, 0.0) > 0.0);
    }
}
