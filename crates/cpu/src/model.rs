//! Host CPU configuration and the restructuring cost model.
//!
//! The testbed host is an Intel Xeon Platinum 8260L: 2.4 GHz, 16 cores
//! in use (hyperthreading disabled), AVX-256 (Sec. VI). Restructuring
//! on this CPU is what the Multi-Axl baseline measures; the cost model
//! turns a [`OpProfile`] into *single-core work* plus a *parallelism
//! cap*, which the system simulator feeds into a processor-sharing
//! pool — concurrency effects then emerge rather than being tabulated.

use dmx_restructure::OpProfile;

/// Host CPU parameters.
#[derive(Debug, Clone, Copy)]
pub struct HostCpuConfig {
    /// Usable cores (hyperthreading disabled).
    pub cores: u32,
    /// Core frequency, Hz.
    pub freq_hz: u64,
    /// Vector width in bytes (AVX-256).
    pub vector_bytes: u32,
    /// Effective per-core streaming bandwidth for cache-thrashing
    /// access patterns, bytes/second. Far below the socket peak:
    /// write-allocate traffic, TLB walks and inter-pass evictions all
    /// land on the same core's MLP budget.
    pub per_core_stream_bw: u64,
    /// Fraction of peak vector throughput that restructuring code
    /// reaches (shuffles, lane crossings, mixed-width converts).
    pub vector_efficiency: f64,
    /// Per-invocation software overhead (the ephemeral-thread spawning
    /// the paper observes around MKL-based restructuring), seconds.
    pub launch_overhead_s: f64,
    /// How many cores one restructuring instance can use productively.
    /// Streaming kernels stop scaling early (Fig. 5: memory bound).
    pub per_op_core_cap: f64,
}

impl Default for HostCpuConfig {
    fn default() -> Self {
        HostCpuConfig {
            cores: 16,
            freq_hz: 2_400_000_000,
            vector_bytes: 32,
            per_core_stream_bw: 1_100_000_000,
            vector_efficiency: 0.075,
            launch_overhead_s: 250e-6,
            per_op_core_cap: 6.0,
        }
    }
}

impl HostCpuConfig {
    /// Peak vector operations per second per core (one AVX-256 f32 op
    /// per lane per cycle).
    pub fn peak_vec_ops_per_sec(&self) -> f64 {
        self.freq_hz as f64 * (self.vector_bytes / 4) as f64
    }

    /// Single-core seconds to execute one restructuring invocation.
    ///
    /// Compute and memory phases are summed, not overlapped: with the
    /// working set thrashing the LLC, loads serialize behind the
    /// in-flight-miss limit and the FP pipe drains between bursts.
    pub fn restructure_core_seconds(&self, profile: &OpProfile) -> f64 {
        let moved = (profile.input_bytes + profile.output_bytes) as f64;
        let total_ops = profile.ops_per_byte * moved;
        let eff = self.vector_efficiency * (1.0 - 0.6 * profile.irregular)
            / (1.0 + profile.branch_per_kb / 25.0);
        let compute = total_ops / (self.peak_vec_ops_per_sec() * eff.max(0.01));
        // Write-allocate and inter-pass evictions roughly double the
        // DRAM traffic of each streaming pass; scattered (irregular)
        // stores waste most of every cache line they allocate.
        let line_waste = 1.0 + 6.0 * profile.irregular;
        let traffic =
            profile.traffic_bytes() as f64 * (profile.stream_passes / 2.0).max(1.0) * line_waste;
        let memory = traffic * 2.0 / self.per_core_stream_bw as f64;
        compute + memory + self.launch_overhead_s
    }

    /// Parallelism cap for one restructuring invocation, in cores.
    pub fn restructure_core_cap(&self, profile: &OpProfile) -> f64 {
        // Irregular kernels scale even worse across threads.
        (self.per_op_core_cap * (1.0 - 0.4 * profile.irregular)).max(1.0)
    }

    /// Effective single-instance restructuring throughput, bytes/s
    /// (running alone, at its parallelism cap).
    pub fn restructure_throughput(&self, profile: &OpProfile) -> f64 {
        let secs = self.restructure_core_seconds(profile) / self.restructure_core_cap(profile);
        (profile.input_bytes + profile.output_bytes) as f64 / secs
    }

    /// Single-core seconds for an *application kernel* run on the CPU
    /// (the All-CPU configuration of Fig. 3), given the kernel's
    /// accelerator latency and its accelerator speedup over the CPU.
    pub fn kernel_core_seconds(&self, accel_seconds: f64, accel_speedup: f64) -> f64 {
        accel_seconds * accel_speedup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_profile(mb: u64) -> OpProfile {
        OpProfile {
            name: "stream".into(),
            input_bytes: mb << 20,
            output_bytes: mb << 20,
            scratch_bytes: 0,
            stream_passes: 2.0,
            ops_per_byte: 0.5,
            branch_per_kb: 1.0,
            irregular: 0.0,
        }
    }

    #[test]
    fn default_matches_testbed() {
        let c = HostCpuConfig::default();
        assert_eq!(c.cores, 16);
        assert_eq!(c.freq_hz, 2_400_000_000);
        assert_eq!(c.vector_bytes, 32);
        // AVX-256 = 8 f32 lanes
        assert_eq!(c.peak_vec_ops_per_sec(), 2.4e9 * 8.0);
    }

    #[test]
    fn work_scales_with_size() {
        let c = HostCpuConfig::default();
        let t8 = c.restructure_core_seconds(&stream_profile(8));
        let t16 = c.restructure_core_seconds(&stream_profile(16));
        assert!(t16 > 1.8 * t8 && t16 < 2.2 * t8, "t8={t8} t16={t16}");
    }

    #[test]
    fn branchy_ops_are_slower() {
        let c = HostCpuConfig::default();
        let mut branchy = stream_profile(8);
        branchy.branch_per_kb = 20.0;
        assert!(
            c.restructure_core_seconds(&branchy) > c.restructure_core_seconds(&stream_profile(8))
        );
    }

    #[test]
    fn irregular_ops_scale_worse() {
        let c = HostCpuConfig::default();
        let mut irr = stream_profile(8);
        irr.irregular = 1.0;
        assert!(c.restructure_core_cap(&irr) < c.restructure_core_cap(&stream_profile(8)));
        assert!(c.restructure_core_cap(&irr) >= 1.0);
    }

    #[test]
    fn throughput_is_single_digit_gbps() {
        // The paper's motivating observation: restructuring on a big
        // Xeon still moves only ~1-2 GB/s per instance.
        let c = HostCpuConfig::default();
        let tp = c.restructure_throughput(&stream_profile(8));
        assert!(
            tp > 0.3e9 && tp < 8e9,
            "restructure throughput {tp} out of plausible range"
        );
    }

    #[test]
    fn overhead_dominates_tiny_ops() {
        let c = HostCpuConfig::default();
        let tiny = OpProfile {
            name: "tiny".into(),
            input_bytes: 1024,
            output_bytes: 1024,
            scratch_bytes: 0,
            stream_passes: 1.0,
            ops_per_byte: 0.1,
            branch_per_kb: 0.5,
            irregular: 0.0,
        };
        let t = c.restructure_core_seconds(&tiny);
        assert!(t >= c.launch_overhead_s);
        assert!(t < 2.0 * c.launch_overhead_s);
    }
}
