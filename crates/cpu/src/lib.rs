//! # dmx-cpu — host CPU model
//!
//! The Multi-Axl baseline runs all data restructuring on the host Xeon
//! (Sec. II); this crate models that host three ways:
//!
//! * [`HostCpuConfig`] — a cost model turning a restructuring
//!   [`dmx_restructure::OpProfile`] into single-core work plus a
//!   parallelism cap, consumed by the system simulator's
//!   processor-sharing core pool (concurrency collapse then *emerges*,
//!   reproducing Fig. 3/11's scaling);
//! * [`cache`] + [`topdown`] — a trace-driven cache simulator and a
//!   top-down cycle-accounting model reproducing the Fig. 5
//!   characterization (back-end-memory dominance, tiny instruction
//!   working sets, the branchy Video Surveillance outlier);
//! * [`CpuEnergyModel`] — RAPL-style package energy.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod energy;
pub mod model;
pub mod topdown;

pub use cache::{characterize, Cache, CacheConfig, MpkiReport};
pub use energy::CpuEnergyModel;
pub use model::HostCpuConfig;
pub use topdown::{characterize_op, Characterization, TopDown};
