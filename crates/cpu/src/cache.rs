//! Trace-driven cache simulator used for the Fig. 5 characterization.
//!
//! Restructuring ops stream multi-megabyte batches through a cache
//! hierarchy sized for locality (paper testbed: 32 KB L1I/L1D, 1 MB
//! L2), so data misses are massive while the instruction working set
//! fits L1I. We reproduce this by generating a synthetic address trace
//! from an op's [`OpProfile`] and running it through set-associative
//! LRU caches.

use dmx_restructure::OpProfile;

/// One set-associative, LRU, write-allocate cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // per set: tags, most recent last
    ways: usize,
    line_bits: u32,
    set_mask: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `capacity` bytes, `ways`-associative, with
    /// 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity / (ways * 64)` is a nonzero power of two.
    pub fn new(capacity: usize, ways: usize) -> Cache {
        let line = 64;
        let n_sets = capacity / (ways * line);
        assert!(
            n_sets > 0 && n_sets.is_power_of_two(),
            "set count must be a nonzero power of two"
        );
        Cache {
            sets: vec![Vec::with_capacity(ways); n_sets],
            ways,
            line_bits: 6,
            set_mask: n_sets as u64 - 1,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses an address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr >> self.line_bits;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.push(t);
            true
        } else {
            self.misses += 1;
            if ways.len() == self.ways {
                ways.remove(0);
            }
            ways.push(tag);
            false
        }
    }

    /// Installs a line without counting an access (hardware prefetch).
    pub fn install(&mut self, addr: u64) {
        let line = addr >> self.line_bits;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.push(t);
            return;
        }
        if ways.len() == self.ways {
            ways.remove(0);
        }
        ways.push(tag);
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// MPKI report for one op (the quantities Sec. IV.A cites).
#[derive(Debug, Clone, PartialEq)]
pub struct MpkiReport {
    /// Instruction-cache misses per kilo-instruction.
    pub l1i_mpki: f64,
    /// L1 data-cache misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// Instructions simulated (scaled to the full op).
    pub instructions: u64,
}

/// Cache hierarchy configuration (testbed Xeon: Sec. IV.A cites the
/// 1 MB L2 explicitly).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// L1 instruction cache bytes.
    pub l1i_bytes: usize,
    /// L1 data cache bytes.
    pub l1d_bytes: usize,
    /// Unified L2 bytes.
    pub l2_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1i_bytes: 32 << 10,
            l1d_bytes: 32 << 10,
            l2_bytes: 1 << 20,
        }
    }
}

/// AVX instructions per byte moved for a vectorized restructuring loop:
/// per 32-byte vector chunk, roughly a load, an op or two, a store and
/// loop bookkeeping amortized by unrolling.
fn instrs_per_byte(profile: &OpProfile) -> f64 {
    let base = 8.0 / 32.0; // ~8 instructions per 32 B chunk
                           // Irregular (gathered) elements need scalar address math.
    base * (1.0 + 3.0 * profile.irregular) + profile.branch_per_kb / 1024.0
}

/// Simulates an op's access trace and reports MPKI.
///
/// The trace is sampled: at most `max_bytes` of the op's stream is
/// simulated (the pattern is periodic, so MPKI converges quickly).
pub fn characterize(profile: &OpProfile, config: &CacheConfig, max_bytes: u64) -> MpkiReport {
    let mut l1i = Cache::new(config.l1i_bytes, 8);
    let mut l1d = Cache::new(config.l1d_bytes, 8);
    let mut l2 = Cache::new(config.l2_bytes, 16);

    // Instruction working set: a small loop body (restructuring
    // kernels fit in L1I — Sec. IV.A) plus occasional excursions into
    // runtime/library code that keep L1I misses nonzero.
    let loop_body_bytes: u64 = 3 << 10;
    let runtime_bytes: u64 = 256 << 10;
    let ipb = instrs_per_byte(profile);

    let elem: u64 = 32; // one vector chunk
                        // Simulate a fixed trace window; small working sets loop within it
                        // (amortizing cold misses), large ones stream through it.
    let steps = (max_bytes / elem).max(1);
    let in_span = profile.input_bytes.max(elem);
    let out_span = profile.output_bytes.max(elem);
    let scratch_span = profile.scratch_bytes.max(elem);
    // Address bases far apart so streams do not alias.
    let in_base = 0u64;
    let out_base = 1 << 34;
    let scratch_base = 1 << 35;
    let stack_base = 1 << 36;

    let mut instret = 0u64;
    let mut pc = 0u64;
    let mut rng: u64 = 0x2545F491_4F6CDD1D;
    let next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let extra_passes = (profile.stream_passes - 2.0).max(0.0);

    let mut rng2 = next;
    for i in 0..steps {
        // Instruction fetches for this chunk's worth of instructions.
        let n_instr = (ipb * elem as f64).ceil() as u64;
        for _ in 0..n_instr {
            pc = (pc + 8) % loop_body_bytes;
            // ~0.2% of fetches leave the loop (libc, allocator, MKL
            // dispatch) — the source of the residual ~2 L1I MPKI.
            let addr = if rng2() % 512 == 0 {
                (1 << 40) + (rng2() % runtime_bytes)
            } else {
                (1 << 41) + pc
            };
            l1i.access(addr);
            instret += 1;
        }
        // Data: streaming read, streaming write, optional scratch
        // re-traversals and irregular accesses.
        // The L2 next-line prefetcher hides roughly every other miss
        // of a sequential stream.
        let data = |l1d: &mut Cache, l2: &mut Cache, addr: u64, sequential: bool| {
            if !l1d.access(addr) && !l2.access(addr) && sequential {
                l2.install(addr + 64);
            }
        };
        let rd = in_base + (i * elem) % in_span;
        data(&mut l1d, &mut l2, rd, true);
        // Write-allocate: a store miss also fetches the line.
        let wr = out_base + (i * elem) % out_span;
        data(&mut l1d, &mut l2, wr, true);
        if extra_passes > 0.0
            && (i as f64 * extra_passes) as u64 != ((i + 1) as f64 * extra_passes) as u64
        {
            let sc = scratch_base + (i * elem) % scratch_span;
            data(&mut l1d, &mut l2, sc, true);
        }
        if profile.irregular > 0.0 && rng2() % 1000 < (profile.irregular * 1000.0) as u64 {
            let g = scratch_base + (rng2() % scratch_span.max(in_span));
            data(&mut l1d, &mut l2, g, false);
        }
        // A few stack/bookkeeping accesses that always hit.
        let st = stack_base + (rng2() % 512);
        data(&mut l1d, &mut l2, st, false);
    }

    let ki = (instret as f64 / 1000.0).max(1e-9);
    MpkiReport {
        l1i_mpki: l1i.misses() as f64 / ki,
        l1d_mpki: l1d.misses() as f64 / ki,
        l2_mpki: l2.misses() as f64 / ki,
        instructions: instret,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(mb: u64, passes: f64, irregular: f64, branchy: f64) -> OpProfile {
        OpProfile {
            name: "t".into(),
            input_bytes: mb << 20,
            output_bytes: mb << 20,
            scratch_bytes: (mb << 20) / 2,
            stream_passes: passes,
            ops_per_byte: 1.0,
            branch_per_kb: branchy,
            irregular,
        }
    }

    #[test]
    fn cache_basics() {
        let mut c = Cache::new(1024, 2);
        assert!(!c.access(0)); // cold miss
        assert!(c.access(0)); // hit
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 ways, 8 sets of 64B lines -> lines mapping to set 0 are
        // multiples of 64*8 = 512.
        let mut c = Cache::new(1024, 2);
        c.access(0);
        c.access(512);
        c.access(1024); // evicts line 0
        assert!(!c.access(0), "line 0 must have been evicted");
        assert!(c.access(1024));
    }

    #[test]
    fn streaming_op_matches_paper_bands() {
        // Sec. IV.A: 50-215 L1D MPKI, 25-109 L2 MPKI, ~2.3 L1I MPKI.
        let r = characterize(&profile(8, 3.0, 0.0, 1.0), &CacheConfig::default(), 4 << 20);
        assert!(
            r.l1d_mpki > 50.0 && r.l1d_mpki < 250.0,
            "L1D MPKI {} outside the paper's band",
            r.l1d_mpki
        );
        assert!(
            r.l2_mpki > 20.0 && r.l2_mpki < 120.0,
            "L2 MPKI {} outside the paper's band",
            r.l2_mpki
        );
        assert!(
            r.l1i_mpki > 0.3 && r.l1i_mpki < 8.0,
            "L1I MPKI {} should be small",
            r.l1i_mpki
        );
    }

    #[test]
    fn small_working_set_has_low_data_mpki() {
        let mut p = profile(8, 2.0, 0.0, 1.0);
        p.input_bytes = 64 << 10; // fits L2
        p.output_bytes = 64 << 10;
        p.scratch_bytes = 0;
        let r = characterize(&p, &CacheConfig::default(), 16 << 20);
        let big = characterize(&profile(8, 2.0, 0.0, 1.0), &CacheConfig::default(), 4 << 20);
        assert!(
            r.l2_mpki < big.l2_mpki / 3.0,
            "{} vs {}",
            r.l2_mpki,
            big.l2_mpki
        );
    }

    #[test]
    fn irregular_ops_miss_more() {
        let reg = characterize(&profile(8, 2.0, 0.0, 1.0), &CacheConfig::default(), 2 << 20);
        let irr = characterize(&profile(8, 2.0, 0.9, 1.0), &CacheConfig::default(), 2 << 20);
        assert!(irr.l1d_mpki + 1.0 > reg.l1d_mpki * 0.5);
        assert!(
            irr.instructions > reg.instructions,
            "gathers add address math"
        );
    }

    #[test]
    fn deterministic() {
        let a = characterize(&profile(4, 2.0, 0.2, 3.0), &CacheConfig::default(), 1 << 20);
        let b = characterize(&profile(4, 2.0, 0.2, 3.0), &CacheConfig::default(), 1 << 20);
        assert_eq!(a, b);
    }
}
