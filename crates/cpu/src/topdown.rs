//! Top-down microarchitecture analysis (Fig. 5): splits cycles into
//! retiring / bad-speculation / front-end / back-end(core) /
//! back-end(memory), the methodology of Yasin's top-down paper that
//! Intel VTune implements.
//!
//! The model composes per-instruction cycle components from the cache
//! simulation ([`crate::cache::characterize`]) and the op profile, then
//! normalizes. Constants are Cascade-Lake-ish latencies; the goal is
//! the paper's *shape*: back-end-memory dominance for every
//! restructuring op, with Video Surveillance as the bad-speculation
//! outlier.

use crate::cache::{characterize, CacheConfig, MpkiReport};
use dmx_restructure::OpProfile;

/// Top-down cycle fractions; the five buckets sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopDown {
    /// Useful work.
    pub retiring: f64,
    /// Wasted by mispredicted paths and re-steers.
    pub bad_speculation: f64,
    /// Fetch/decode starvation.
    pub frontend: f64,
    /// Back-end, execution-unit pressure.
    pub backend_core: f64,
    /// Back-end, waiting on the memory hierarchy.
    pub backend_memory: f64,
}

impl TopDown {
    /// Total back-end-bound fraction.
    pub fn backend(&self) -> f64 {
        self.backend_core + self.backend_memory
    }
}

/// Full Fig. 5-style characterization of one restructuring op.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// Op name.
    pub name: String,
    /// Top-down breakdown.
    pub topdown: TopDown,
    /// Cache behaviour.
    pub mpki: MpkiReport,
}

// Cascade-Lake-flavoured constants.
const L2_HIT_CYCLES: f64 = 14.0;
const DRAM_CYCLES: f64 = 190.0;
const L2_MLP: f64 = 10.0; // memory-level parallelism on streams
const L1_MLP: f64 = 3.0;
const MISPREDICT_PENALTY: f64 = 17.0;
const ICACHE_MISS_CYCLES: f64 = 20.0;
const BASE_CPI: f64 = 0.4; // retirement-limited floor

/// Computes the top-down breakdown and MPKI for an op.
pub fn characterize_op(profile: &OpProfile, config: &CacheConfig) -> Characterization {
    const TRACE_BYTES: u64 = 4 << 20;
    let mpki = characterize(profile, config, TRACE_BYTES);
    // Instruction mix facts (the trace window covers TRACE_BYTES of
    // stream movement regardless of the op's total size).
    let ipb = mpki.instructions as f64 / TRACE_BYTES as f64;
    let branches_per_instr = (profile.branch_per_kb / 1024.0) / ipb.max(1e-9) + 0.01;
    let mispredict_rate = (0.02 + profile.branch_per_kb * 0.005).min(0.15);

    // Per-instruction cycle components.
    let retiring = BASE_CPI;
    let frontend = mpki.l1i_mpki / 1000.0 * ICACHE_MISS_CYCLES + 0.015 + branches_per_instr * 0.2; // uop-cache switches on branchy code
    let bad_spec = branches_per_instr * mispredict_rate * MISPREDICT_PENALTY;
    let l1_only = (mpki.l1d_mpki - mpki.l2_mpki).max(0.0);
    let backend_memory = l1_only / 1000.0 * L2_HIT_CYCLES / L1_MLP
        + mpki.l2_mpki / 1000.0 * DRAM_CYCLES / L2_MLP
        + profile.irregular * 0.3; // pointer-chasing kills MLP
    let backend_core = 0.12 + (profile.ops_per_byte / 10.0).min(0.8);

    let total = retiring + frontend + bad_spec + backend_memory + backend_core;
    Characterization {
        name: profile.name.clone(),
        topdown: TopDown {
            retiring: retiring / total,
            bad_speculation: bad_spec / total,
            frontend: frontend / total,
            backend_core: backend_core / total,
            backend_memory: backend_memory / total,
        },
        mpki,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming(name: &str, branchy: f64, irregular: f64) -> OpProfile {
        OpProfile {
            name: name.into(),
            input_bytes: 8 << 20,
            output_bytes: 8 << 20,
            scratch_bytes: 4 << 20,
            stream_passes: 3.0,
            ops_per_byte: 1.5,
            branch_per_kb: branchy,
            irregular,
        }
    }

    #[test]
    fn buckets_sum_to_one() {
        let c = characterize_op(&streaming("s", 1.0, 0.0), &CacheConfig::default());
        let t = c.topdown;
        let sum = t.retiring + t.bad_speculation + t.frontend + t.backend_core + t.backend_memory;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn backend_dominates_restructuring() {
        // Fig. 5: back-end bound is 53%..77.6% across all five ops.
        for (b, irr) in [
            (0.5, 0.0),
            (1.0, 0.0),
            (4.0, 0.3),
            (18.0, 0.05),
            (30.0, 1.0),
        ] {
            let c = characterize_op(&streaming("x", b, irr), &CacheConfig::default());
            let be = c.topdown.backend();
            assert!(
                be > 0.45 && be < 0.85,
                "backend fraction {be} outside plausible Fig. 5 band (b={b})"
            );
        }
    }

    #[test]
    fn memory_bound_exceeds_core_bound() {
        let c = characterize_op(&streaming("s", 1.0, 0.0), &CacheConfig::default());
        assert!(c.topdown.backend_memory > c.topdown.backend_core);
    }

    #[test]
    fn branchy_op_has_more_bad_speculation() {
        let tame = characterize_op(&streaming("tame", 0.5, 0.0), &CacheConfig::default());
        let branchy = characterize_op(&streaming("vs", 18.0, 0.05), &CacheConfig::default());
        assert!(
            branchy.topdown.bad_speculation > 2.0 * tame.topdown.bad_speculation,
            "{} vs {}",
            branchy.topdown.bad_speculation,
            tame.topdown.bad_speculation
        );
        // ... but still bounded like the paper (<= ~12.5%).
        assert!(branchy.topdown.bad_speculation < 0.15);
        assert!(branchy.topdown.frontend < 0.16);
    }

    #[test]
    fn mpki_shape_matches_paper() {
        let c = characterize_op(&streaming("s", 1.0, 0.0), &CacheConfig::default());
        assert!(
            c.mpki.l1d_mpki > c.mpki.l2_mpki,
            "L1D misses exceed L2 misses"
        );
        assert!(c.mpki.l1i_mpki < 10.0, "instruction working set fits L1I");
    }
}
