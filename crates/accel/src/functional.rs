//! Functional byte-level adapters: run the actual `dmx-kernels`
//! algorithms behind the accelerator models, so examples and tests can
//! push real data through a chain while the catalog supplies timing.

use crate::catalog::AccelKind;
use dmx_kernels::{aes, fft, join, lz, regex, svm, token, video};

/// A functional kernel: bytes in, bytes out.
pub trait Functional {
    /// Which accelerator this implements.
    fn kind(&self) -> AccelKind;
    /// Processes one batch.
    fn process(&self, input: &[u8]) -> Vec<u8>;
}

/// FFT accelerator: input `f32` samples, output interleaved complex
/// one-sided STFT spectra (frame 512, hop 256).
#[derive(Debug, Clone, Copy, Default)]
pub struct FftAccel;

impl Functional for FftAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::Fft
    }

    fn process(&self, input: &[u8]) -> Vec<u8> {
        let samples: Vec<f32> = input
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        let (spec, _frames, _bins) = fft::stft(&samples, 512, 256);
        spec.iter()
            .flat_map(|c| {
                let mut b = c.re.to_le_bytes().to_vec();
                b.extend(c.im.to_le_bytes());
                b
            })
            .collect()
    }
}

/// SVM accelerator: input `f32` feature rows of `dims`, output one
/// predicted class byte per row.
#[derive(Debug, Clone)]
pub struct SvmAccel {
    model: svm::LinearSvm,
}

impl SvmAccel {
    /// Wraps a trained SVM.
    pub fn new(model: svm::LinearSvm) -> SvmAccel {
        SvmAccel { model }
    }
}

impl Functional for SvmAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::Svm
    }

    fn process(&self, input: &[u8]) -> Vec<u8> {
        let dims = self.model.dims();
        let feats: Vec<f32> = input
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        feats
            .chunks_exact(dims)
            .map(|row| self.model.predict(row) as u8)
            .collect()
    }
}

/// AES-128-CTR decryption accelerator (fixed demo key/nonce).
#[derive(Debug, Clone)]
pub struct AesAccel {
    cipher: aes::Aes128,
    nonce: [u8; 12],
}

impl Default for AesAccel {
    fn default() -> Self {
        AesAccel {
            cipher: aes::Aes128::new(b"dmx-demo-key-16B"),
            nonce: *b"dmx-nonce-12",
        }
    }
}

impl AesAccel {
    /// Encrypts plaintext (CTR is an involution, so this is also the
    /// decryptor the pipeline runs).
    pub fn encrypt(&self, data: &[u8]) -> Vec<u8> {
        self.process(data)
    }
}

impl Functional for AesAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::AesGcm
    }

    fn process(&self, input: &[u8]) -> Vec<u8> {
        let mut out = input.to_vec();
        self.cipher.ctr_transform(&self.nonce, &mut out);
        out
    }
}

/// Regex PII-redaction accelerator.
#[derive(Debug)]
pub struct RegexAccel {
    patterns: Vec<regex::Regex>,
}

impl RegexAccel {
    /// Compiles redaction patterns.
    ///
    /// # Errors
    ///
    /// Returns the first pattern error.
    pub fn new(patterns: &[&str]) -> Result<RegexAccel, regex::RegexError> {
        Ok(RegexAccel {
            patterns: patterns
                .iter()
                .map(|p| regex::Regex::new(p))
                .collect::<Result<_, _>>()?,
        })
    }

    /// The default PII patterns (SSN-like ids and e-mail addresses).
    pub fn pii() -> RegexAccel {
        RegexAccel::new(&[r"\d\d\d-\d\d-\d\d\d\d", r"\w+@\w+\.\w+"]).expect("valid patterns")
    }
}

impl Functional for RegexAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::Regex
    }

    fn process(&self, input: &[u8]) -> Vec<u8> {
        let mut text = input.to_vec();
        for p in &self.patterns {
            text = p.redact(&text, b'#').0;
        }
        text
    }
}

/// Gzip-class decompression accelerator.
#[derive(Debug, Clone, Copy, Default)]
pub struct GzipAccel;

impl Functional for GzipAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::Gzip
    }

    fn process(&self, input: &[u8]) -> Vec<u8> {
        lz::decompress(input).expect("pipeline feeds valid streams")
    }
}

/// Hash-join accelerator: input is two concatenated row arrays
/// (`u64 key, u64 payload` pairs, build side length prefix).
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinAccel;

impl JoinAccel {
    /// Packs build/probe tables into the accelerator's wire format.
    pub fn pack(build: &[join::Row], probe: &[join::Row]) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + (build.len() + probe.len()) * 16);
        out.extend((build.len() as u64).to_le_bytes());
        for r in build.iter().chain(probe) {
            out.extend(r.key.to_le_bytes());
            out.extend(r.payload.to_le_bytes());
        }
        out
    }
}

impl Functional for JoinAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::HashJoin
    }

    fn process(&self, input: &[u8]) -> Vec<u8> {
        let n_build = u64::from_le_bytes(input[..8].try_into().expect("sized")) as usize;
        let rows: Vec<join::Row> = input[8..]
            .chunks_exact(16)
            .map(|c| join::Row {
                key: u64::from_le_bytes(c[..8].try_into().expect("sized")),
                payload: u64::from_le_bytes(c[8..].try_into().expect("sized")),
            })
            .collect();
        let (build, probe) = rows.split_at(n_build);
        join::hash_join(build, probe)
            .iter()
            .flat_map(|j| {
                let mut b = j.key.to_le_bytes().to_vec();
                b.extend(j.left.to_le_bytes());
                b.extend(j.right.to_le_bytes());
                b
            })
            .collect()
    }
}

/// Video decoder accelerator (the toy codec from `dmx-kernels`).
#[derive(Debug, Clone, Copy, Default)]
pub struct VideoAccel;

impl Functional for VideoAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::VideoDecode
    }

    fn process(&self, input: &[u8]) -> Vec<u8> {
        let frames = video::decode(input).expect("pipeline feeds valid streams");
        let mut out = Vec::new();
        for f in &frames {
            out.extend_from_slice(&f.y);
            out.extend_from_slice(&f.u);
            out.extend_from_slice(&f.v);
        }
        out
    }
}

/// BERT-NER stand-in: input `u32` token tensor, output one tag byte per
/// token (0 = outside, 1 = entity).
#[derive(Debug, Clone)]
pub struct NerAccel {
    mlp: dmx_kernels::nn::Mlp,
}

impl Default for NerAccel {
    fn default() -> Self {
        NerAccel {
            mlp: dmx_kernels::nn::Mlp::seeded(&[4, 32, 2], 2024),
        }
    }
}

impl Functional for NerAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::BertNer
    }

    fn process(&self, input: &[u8]) -> Vec<u8> {
        let tokens: Vec<u32> = input
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let prev = if i > 0 { tokens[i - 1] } else { 0 };
                let feats = [
                    t as f32 / token::VOCAB_SIZE as f32,
                    prev as f32 / token::VOCAB_SIZE as f32,
                    ((t >= token::special::BYTE_BASE + b'0' as u32)
                        && (t <= token::special::BYTE_BASE + b'9' as u32)) as u8
                        as f32,
                    (i % 64) as f32 / 64.0,
                ];
                let scores = self.mlp.forward(&feats);
                (scores[1] > scores[0]) as u8
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_kernels::join::Row;

    #[test]
    fn fft_accel_output_shape() {
        let samples: Vec<u8> = (0..2048u32)
            .flat_map(|i| ((i as f32 * 0.1).sin()).to_le_bytes())
            .collect();
        let out = FftAccel.process(&samples);
        // frames = (2048-512)/256 + 1 = 7, bins = 257, complex f32
        assert_eq!(out.len(), 7 * 257 * 8);
    }

    #[test]
    fn aes_round_trips() {
        let a = AesAccel::default();
        let plain = b"some personally identifiable text".to_vec();
        let enc = a.encrypt(&plain);
        assert_ne!(enc, plain);
        assert_eq!(a.process(&enc), plain);
    }

    #[test]
    fn regex_accel_redacts() {
        let r = RegexAccel::pii();
        let out = r.process(b"ssn 123-45-6789 mail a@b.com");
        assert!(!out.windows(11).any(|w| w == b"123-45-6789"));
        assert!(out.iter().filter(|&&b| b == b'#').count() >= 11);
    }

    #[test]
    fn gzip_accel_inverts_compress() {
        let data = b"abcabcabcabc data data data".repeat(50);
        let comp = dmx_kernels::lz::compress(&data);
        assert_eq!(GzipAccel.process(&comp), data);
    }

    #[test]
    fn join_accel_joins() {
        let build = vec![
            Row {
                key: 1,
                payload: 10,
            },
            Row {
                key: 2,
                payload: 20,
            },
        ];
        let probe = vec![Row {
            key: 2,
            payload: 200,
        }];
        let wire = JoinAccel::pack(&build, &probe);
        let out = JoinAccel.process(&wire);
        assert_eq!(out.len(), 24);
        assert_eq!(u64::from_le_bytes(out[..8].try_into().unwrap()), 2);
    }

    #[test]
    fn video_accel_decodes() {
        let frames = dmx_kernels::video::synthetic_scene(32, 16, 2);
        let enc = dmx_kernels::video::encode(&frames);
        let raw = VideoAccel.process(&enc);
        assert_eq!(raw.len(), 2 * (32 * 16 + 2 * (32 * 16 / 4)));
    }

    #[test]
    fn ner_emits_one_tag_per_token() {
        let toks = dmx_kernels::token::tokenize(b"agent 007 reporting", 32);
        let bytes: Vec<u8> = toks.iter().flat_map(|t| t.to_le_bytes()).collect();
        let tags = NerAccel::default().process(&bytes);
        assert_eq!(tags.len(), toks.len());
        assert!(tags.iter().all(|&t| t <= 1));
    }
}
