//! The accelerator catalog: latency, throughput and energy models for
//! the ten application-kernel accelerators of Table I.
//!
//! The paper implements these on AWS VU9P FPGAs at 250 MHz (hard-IP for
//! the video codec, Vitis HLS for FFT/SVM/AES-GCM/Gzip/regex/hash-join,
//! open-source RTL for the DNNs) and reports a 6.5x geometric-mean
//! speedup over CPU execution (Sec. II.B). Per-kind throughputs and
//! speedups here are calibrated to that aggregate.

use dmx_sim::Time;

/// The application-kernel accelerators of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelKind {
    /// Video decoder (VT1 hard-IP class).
    VideoDecode,
    /// Object-detection DNN (RTL).
    ObjectDetection,
    /// FFT / STFT (Vitis HLS).
    Fft,
    /// Support vector machine (Vitis HLS).
    Svm,
    /// AES-GCM decryption (Vitis HLS).
    AesGcm,
    /// Regular-expression scanning (Vitis HLS).
    Regex,
    /// Gzip-class decompression (Vitis HLS).
    Gzip,
    /// Database hash join (Vitis HLS).
    HashJoin,
    /// PPO reinforcement-learning policy (RTL).
    Ppo,
    /// BERT-based named-entity recognition (the Fig. 16 third kernel).
    BertNer,
}

impl AccelKind {
    /// All kinds.
    pub const ALL: [AccelKind; 10] = [
        AccelKind::VideoDecode,
        AccelKind::ObjectDetection,
        AccelKind::Fft,
        AccelKind::Svm,
        AccelKind::AesGcm,
        AccelKind::Regex,
        AccelKind::Gzip,
        AccelKind::HashJoin,
        AccelKind::Ppo,
        AccelKind::BertNer,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AccelKind::VideoDecode => "video-decode",
            AccelKind::ObjectDetection => "object-detection",
            AccelKind::Fft => "fft",
            AccelKind::Svm => "svm",
            AccelKind::AesGcm => "aes-gcm",
            AccelKind::Regex => "regex",
            AccelKind::Gzip => "gzip",
            AccelKind::HashJoin => "hash-join",
            AccelKind::Ppo => "ppo",
            AccelKind::BertNer => "bert-ner",
        }
    }

    /// The timing/energy model for this accelerator.
    pub fn model(self) -> AccelModel {
        // (bytes per cycle at 250 MHz, setup cycles, speedup over CPU,
        //  active watts, idle watts)
        let (bpc, setup, speedup, active_w, idle_w) = match self {
            AccelKind::VideoDecode => (4.0, 20_000, 3.0, 18.0, 6.0),
            AccelKind::ObjectDetection => (1.4, 50_000, 12.0, 35.0, 10.0),
            AccelKind::Fft => (2.8, 10_000, 8.0, 28.0, 8.0),
            AccelKind::Svm => (6.0, 8_000, 5.5, 22.0, 7.0),
            AccelKind::AesGcm => (4.0, 6_000, 9.0, 20.0, 6.0),
            AccelKind::Regex => (6.0, 8_000, 4.0, 24.0, 7.0),
            AccelKind::Gzip => (4.0, 12_000, 5.5, 26.0, 8.0),
            AccelKind::HashJoin => (6.0, 15_000, 7.0, 30.0, 9.0),
            AccelKind::Ppo => (1.6, 30_000, 10.0, 32.0, 10.0),
            AccelKind::BertNer => (0.5, 80_000, 15.0, 40.0, 12.0),
        };
        AccelModel {
            kind: self,
            bytes_per_cycle: bpc,
            setup_cycles: setup,
            clock_hz: 250_000_000,
            cpu_speedup: speedup,
            active_watts: active_w,
            idle_watts: idle_w,
        }
    }
}

/// Latency/energy model of one accelerator card.
#[derive(Debug, Clone, Copy)]
pub struct AccelModel {
    /// Which accelerator.
    pub kind: AccelKind,
    /// Streaming throughput in input bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Fixed pipeline fill / configuration cycles per invocation.
    pub setup_cycles: u64,
    /// FPGA clock (250 MHz for every Table I kernel).
    pub clock_hz: u64,
    /// Speedup over running the same kernel on the host CPU
    /// (geomean across the catalog ≈ 6.5x, Sec. II.B).
    pub cpu_speedup: f64,
    /// Power while processing, watts (post-synthesis class numbers).
    pub active_watts: f64,
    /// Power while idle but powered, watts.
    pub idle_watts: f64,
}

impl AccelModel {
    /// Kernel execution latency for `bytes` of input.
    pub fn service_time(&self, bytes: u64) -> Time {
        let cycles = self.setup_cycles + (bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        Time::from_cycles(cycles, self.clock_hz)
    }

    /// The same kernel's latency on the host CPU (the All-CPU
    /// configuration of Fig. 3).
    pub fn cpu_time(&self, bytes: u64) -> Time {
        self.service_time(bytes).scale(self.cpu_speedup)
    }

    /// Energy to process `bytes` (active power over the service time).
    pub fn energy_joules(&self, bytes: u64) -> f64 {
        self.active_watts * self.service_time(bytes).as_secs_f64()
    }
}

/// Geometric mean of the catalog's CPU speedups.
pub fn catalog_speedup_geomean() -> f64 {
    let logs: f64 = AccelKind::ALL
        .iter()
        .map(|k| k.model().cpu_speedup.ln())
        .sum();
    (logs / AccelKind::ALL.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_geomean_matches_paper() {
        // Sec. II.B: "the geometric mean of per accelerator speedup is 6.5x".
        let g = catalog_speedup_geomean();
        assert!((g - 6.5).abs() < 1.0, "geomean speedup {g} should be ~6.5");
    }

    #[test]
    fn service_time_scales_with_bytes() {
        let m = AccelKind::Fft.model();
        let t1 = m.service_time(1 << 20);
        let t8 = m.service_time(8 << 20);
        let ratio = t8.as_secs_f64() / t1.as_secs_f64();
        assert!(ratio > 6.0 && ratio < 8.5, "ratio {ratio}");
    }

    #[test]
    fn eight_megabytes_lands_in_milliseconds() {
        // Sanity: Table I batches (6-16 MB) take ~1-10 ms per kernel,
        // leaving restructuring to dominate end-to-end time (Fig. 3).
        for kind in AccelKind::ALL {
            if kind == AccelKind::BertNer {
                continue; // deliberately much slower (compute-bound)
            }
            let t = kind.model().service_time(8 << 20);
            assert!(
                t.as_ms_f64() > 0.2 && t.as_ms_f64() < 30.0,
                "{}: {t}",
                kind.name()
            );
        }
    }

    #[test]
    fn bert_is_the_compute_heavy_outlier() {
        let bert = AccelKind::BertNer.model().service_time(1 << 20);
        let regex = AccelKind::Regex.model().service_time(1 << 20);
        assert!(bert.as_secs_f64() > 10.0 * regex.as_secs_f64());
    }

    #[test]
    fn cpu_time_applies_speedup() {
        let m = AccelKind::Svm.model();
        let acc = m.service_time(1 << 20).as_secs_f64();
        let cpu = m.cpu_time(1 << 20).as_secs_f64();
        assert!((cpu / acc - m.cpu_speedup).abs() < 0.01);
    }

    #[test]
    fn video_has_least_speedup() {
        // Sec. VII.A: "the accelerator used for Video Surveillance
        // provides less speedup compared to the other benchmarks".
        let video = AccelKind::VideoDecode.model().cpu_speedup;
        for kind in AccelKind::ALL {
            assert!(kind.model().cpu_speedup >= video);
        }
    }

    #[test]
    fn energy_positive_and_bounded() {
        for kind in AccelKind::ALL {
            let e = kind.model().energy_joules(8 << 20);
            assert!(e > 0.0 && e < 100.0, "{}: {e} J", kind.name());
        }
    }
}
