//! # dmx-accel — accelerator catalog
//!
//! Models of the ten Table I application-kernel accelerators:
//! [`catalog`] holds the latency/throughput/energy models (calibrated
//! to the paper's FPGA setup: 250 MHz, 6.5x geomean speedup over CPU),
//! and [`functional`] binds each kind to the real algorithm from
//! `dmx-kernels` so example pipelines process genuine data.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod functional;

pub use catalog::{catalog_speedup_geomean, AccelKind, AccelModel};
pub use functional::{
    AesAccel, FftAccel, Functional, GzipAccel, JoinAccel, NerAccel, RegexAccel, SvmAccel,
    VideoAccel,
};
