//! Text → token-tensor restructuring (the Fig. 16 chain: regex output
//! feeding the BERT NER kernel): byte-level vocabulary lookup through a
//! resident gather table, `[CLS]`/`[SEP]` framing, and padding to a
//! fixed sequence length.

use crate::op::{Lowered, OpError, OpProfile, RestructureOp};
use dmx_drx::ir::{Access, Kernel, VecStmt};
use dmx_drx::isa::{Dtype, VectorOp};
use dmx_drx::{compile, DrxConfig};
use dmx_kernels::token::{byte_lut, special};

/// Byte text → `u32` token tensor of shape `n_seqs x seq_len`.
///
/// Input: exactly `n_seqs * (seq_len - 2)` text bytes (the host pads
/// the tail chunk). Output row: `[CLS] tokens... [SEP] [PAD]...` — here
/// every payload slot is filled, so rows are `[CLS] payload [SEP]` with
/// any slots beyond `payload + 2` left as `PAD` (zero).
#[derive(Debug, Clone)]
pub struct TokenizeGather {
    /// Number of sequences in the batch.
    pub n_seqs: u64,
    /// Tokens per sequence including `[CLS]`/`[SEP]`.
    pub seq_len: u64,
}

impl TokenizeGather {
    /// Creates the op.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len < 3` or `n_seqs == 0`.
    pub fn new(n_seqs: u64, seq_len: u64) -> TokenizeGather {
        assert!(seq_len >= 3, "sequence too short");
        assert!(n_seqs > 0, "empty batch");
        TokenizeGather { n_seqs, seq_len }
    }

    /// Payload bytes per sequence.
    pub fn payload(&self) -> u64 {
        self.seq_len - 2
    }
}

impl RestructureOp for TokenizeGather {
    fn name(&self) -> &str {
        "tokenize_gather"
    }

    fn profile(&self) -> OpProfile {
        let input_bytes = self.n_seqs * self.payload();
        let output_bytes = self.n_seqs * self.seq_len * 4;
        OpProfile {
            name: self.name().to_owned(),
            input_bytes,
            output_bytes,
            scratch_bytes: input_bytes * 4,
            stream_passes: 3.0,
            ops_per_byte: 1.0,
            branch_per_kb: 4.0,
            // LUT gathers hit the cache; only the framing is irregular.
            irregular: 0.3,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        let payload = self.payload() as usize;
        assert_eq!(
            input.len(),
            (self.n_seqs as usize) * payload,
            "input size mismatch"
        );
        let lut = byte_lut();
        let mut out = Vec::with_capacity((self.n_seqs * self.seq_len * 4) as usize);
        for chunk in input.chunks(payload) {
            out.extend(special::CLS.to_le_bytes());
            for &b in chunk {
                out.extend(lut[b as usize].to_le_bytes());
            }
            out.extend(special::SEP.to_le_bytes());
            for _ in (payload + 2)..self.seq_len as usize {
                out.extend(special::PAD.to_le_bytes());
            }
        }
        out
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        let (n_seqs, seq_len) = (self.n_seqs, self.seq_len);
        let payload = self.payload();
        let mut k = Kernel::new("tokenize_gather");
        let text = k.buffer("text", Dtype::U8, n_seqs * payload);
        let lut = k.resident_buffer("lut", Dtype::U32, 256);
        let idx = k.buffer("idx", Dtype::U32, n_seqs * payload);
        let out = k.buffer("tokens", Dtype::U32, n_seqs * seq_len);

        // idx = cast(text) to u32
        k.nest(
            vec![n_seqs * payload],
            vec![VecStmt {
                op: VectorOp::Cast(Dtype::U32),
                dst: Access::row_major(idx, &[n_seqs * payload]),
                src0: Access::row_major(text, &[n_seqs * payload]),
                src1: None,
                imm: 0.0,
            }],
        );
        // tokens[s][1 + j] = lut[idx[s][j]]
        k.nest(
            vec![n_seqs, payload],
            vec![VecStmt {
                op: VectorOp::Gather,
                dst: Access {
                    buf: out,
                    offset: 1,
                    strides: vec![seq_len as i64, 1],
                },
                src0: Access::broadcast(lut, 2, 0),
                src1: Some(Access {
                    buf: idx,
                    offset: 0,
                    strides: vec![payload as i64, 1],
                }),
                imm: 0.0,
            }],
        );
        // CLS at column 0 and SEP at column payload+1.
        for (col, value) in [(0i64, special::CLS), (payload as i64 + 1, special::SEP)] {
            k.nest(
                vec![n_seqs],
                vec![VecStmt {
                    op: VectorOp::Fill,
                    dst: Access {
                        buf: out,
                        offset: col,
                        strides: vec![seq_len as i64],
                    },
                    src0: Access {
                        buf: out,
                        offset: col,
                        strides: vec![seq_len as i64],
                    },
                    src1: None,
                    imm: value as f64,
                }],
            );
        }
        let compiled = compile(&k, config)?;
        let lut_bytes: Vec<u8> = byte_lut().iter().flat_map(|v| v.to_le_bytes()).collect();
        Ok(Lowered {
            inputs: vec![(compiled.layout.addr(text), n_seqs * payload)],
            outputs: vec![(compiled.layout.addr(out), n_seqs * seq_len * 4)],
            consts: vec![(compiled.layout.addr(lut), lut_bytes)],
            dram_bytes: compiled.layout.total_bytes(),
            program: compiled.program,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::assert_cpu_drx_equal;
    use dmx_kernels::token::detokenize;

    #[test]
    fn cpu_and_drx_agree() {
        let op = TokenizeGather::new(5, 34);
        let text: Vec<u8> = (0..5 * 32).map(|i| (i % 251) as u8).collect();
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &text);
    }

    #[test]
    fn cpu_and_drx_agree_small_spad() {
        let op = TokenizeGather::new(20, 18);
        let text: Vec<u8> = (0..20 * 16).map(|i| (i * 7 % 256) as u8).collect();
        let cfg = DrxConfig::default().with_scratchpad(8 << 10);
        assert_cpu_drx_equal(&op, &cfg, &text);
    }

    #[test]
    fn tokens_round_trip_through_detokenize() {
        let op = TokenizeGather::new(2, 10);
        let text = b"hello you amigo!"; // 2 x 8 payload bytes
        let out = op.run_cpu(text);
        let tokens: Vec<u32> = out
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(detokenize(&tokens), text);
        assert_eq!(tokens[0], special::CLS);
        assert_eq!(tokens[9], special::SEP);
    }

    #[test]
    fn longer_rows_are_padded() {
        let op = TokenizeGather::new(1, 12);
        let text = vec![b'a'; 10];
        let out = op.run_cpu(&text);
        let tokens: Vec<u32> = out
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(tokens.len(), 12);
        assert_eq!(tokens[11], special::SEP);
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn validates_input_size() {
        TokenizeGather::new(2, 10).run_cpu(b"short");
    }
}
