//! # dmx-restructure — data-restructuring operator library
//!
//! The concrete *data motion* computations from the paper's Table I,
//! each available three ways:
//!
//! 1. a **CPU reference** implementation ([`RestructureOp::run_cpu`]) —
//!    what the Multi-Axl baseline executes on host cores;
//! 2. a **DRX lowering** ([`RestructureOp::lower`]) — an affine kernel
//!    compiled by `dmx-drx`, or a hand-written program for the
//!    irregular ops (Transposition-Engine pivot, scalar-mode hash
//!    partitioning);
//! 3. a **work profile** ([`OpProfile`]) — the footprint/intensity
//!    descriptor that drives the host-CPU cost model and the Fig. 5
//!    top-down characterization.
//!
//! CPU and DRX paths are verified equal bit-for-bit in this crate's
//! tests (floats follow the DRX evaluation order: f64 arithmetic,
//! f32 stores).
//!
//! | benchmark | ops here |
//! |---|---|
//! | Sound Detection | [`SpectrogramMel`] |
//! | Video Surveillance | [`YuvToTensor`] |
//! | Brain Stimulation | [`BandPower`] |
//! | Personal Info Redaction (+NER) | [`TokenizeGather`], [`QuantizeTensor`] |
//! | Database Hash Join | [`DbPivot`], [`HashPartition`], [`EndianSwap`] |
//! | Collectives (Fig. 17) | [`VecSum`] |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod image;
pub mod op;
pub mod pivot;
pub mod reduce;
pub mod reshape;
pub mod spectro;
pub mod textprep;

pub use image::YuvToTensor;
pub use op::{
    assert_cpu_drx_equal, run_on_drx, run_on_drx_with_flips, Lowered, OpError, OpProfile,
    RestructureOp,
};
pub use pivot::{partition_id, DbPivot, Deinterleave, HashPartition};
pub use reduce::VecSum;
pub use reshape::{BandPower, EndianSwap, PadFrame, QuantizeTensor};
pub use spectro::SpectrogramMel;
pub use textprep::TokenizeGather;
