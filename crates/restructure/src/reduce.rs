//! Element-wise combination ops used by the collective experiments
//! (Fig. 17): all-reduce's scatter-reduce stage sums partial buffers on
//! the DRX ("DMX uses DRX to accelerate the summation operations").

use crate::op::{Lowered, OpError, OpProfile, RestructureOp};
use dmx_drx::ir::{Access, Kernel, VecStmt};
use dmx_drx::isa::{Dtype, VectorOp};
use dmx_drx::{compile, DrxConfig};

/// `out[i] = a[i] + b[i]` over `f32` vectors (one reduction step).
///
/// Input: `2 * elems` `f32` (a then b). Output: `elems` `f32`.
#[derive(Debug, Clone)]
pub struct VecSum {
    /// Elements per operand.
    pub elems: u64,
}

impl RestructureOp for VecSum {
    fn name(&self) -> &str {
        "vec_sum"
    }

    fn profile(&self) -> OpProfile {
        OpProfile {
            name: self.name().to_owned(),
            input_bytes: self.elems * 8,
            output_bytes: self.elems * 4,
            scratch_bytes: 0,
            stream_passes: 3.0,
            ops_per_byte: 1.0 / 12.0,
            branch_per_kb: 0.2,
            irregular: 0.0,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        let n = self.elems as usize;
        assert_eq!(input.len(), 8 * n, "input size mismatch");
        let vals: Vec<f32> = input
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        (0..n)
            .flat_map(|i| {
                let s = ((vals[i] as f64) + (vals[n + i] as f64)) as f32;
                s.to_le_bytes()
            })
            .collect()
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        let n = self.elems;
        let mut k = Kernel::new("vec_sum");
        let a = k.buffer("a", Dtype::F32, n);
        let b = k.buffer("b", Dtype::F32, n);
        let out = k.buffer("out", Dtype::F32, n);
        k.nest(
            vec![n],
            vec![VecStmt {
                op: VectorOp::Add,
                dst: Access::row_major(out, &[n]),
                src0: Access::row_major(a, &[n]),
                src1: Some(Access::row_major(b, &[n])),
                imm: 0.0,
            }],
        );
        let compiled = compile(&k, config)?;
        Ok(Lowered {
            inputs: vec![
                (compiled.layout.addr(a), n * 4),
                (compiled.layout.addr(b), n * 4),
            ],
            outputs: vec![(compiled.layout.addr(out), n * 4)],
            consts: vec![],
            dram_bytes: compiled.layout.total_bytes(),
            program: compiled.program,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{assert_cpu_drx_equal, run_on_drx};

    #[test]
    fn cpu_and_drx_agree() {
        let op = VecSum { elems: 3000 };
        let input: Vec<u8> = (0..6000)
            .flat_map(|i| ((i as f32) * 0.01 - 30.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &input);
    }

    #[test]
    fn sums_correctly() {
        let op = VecSum { elems: 4 };
        let mut input = Vec::new();
        for v in [1.0f32, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0] {
            input.extend(v.to_le_bytes());
        }
        let (out, _) = run_on_drx(&op, &DrxConfig::default(), &input).unwrap();
        let vals: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn scales_with_lanes() {
        let op = VecSum { elems: 65536 };
        let input: Vec<u8> = (0..131072u32)
            .flat_map(|i| (i as f32).to_le_bytes())
            .collect();
        let cfg32 = DrxConfig::default().with_lanes(32);
        let cfg128 = DrxConfig::default();
        let (_, s32) = run_on_drx(&op, &cfg32, &input).unwrap();
        let (_, s128) = run_on_drx(&op, &cfg128, &input).unwrap();
        assert!(
            s32.vec_busy_cycles > 2 * s128.vec_busy_cycles,
            "lanes should speed up compute: {} vs {}",
            s32.vec_busy_cycles,
            s128.vec_busy_cycles
        );
    }
}
