//! Spectrogram + mel-scale restructuring (Sound Detection, Sec. II.A):
//! the FFT accelerator emits interleaved complex spectra, the SVM
//! accelerator wants log-mel feature vectors. The data motion step is
//! `power = re² + im²`, a mel filterbank matrix product, and `ln`.

use crate::op::{Lowered, OpError, OpProfile, RestructureOp};
use dmx_drx::ir::{Access, Kernel, VecStmt};
use dmx_drx::isa::{Dtype, VectorOp};
use dmx_drx::{compile, DrxConfig};
use dmx_kernels::mel::MelFilterbank;

/// Complex spectrogram → log-mel restructuring op.
///
/// Input: `frames x bins` interleaved complex `f32` (re, im).
/// Output: `frames x bands` log-mel `f32`.
#[derive(Debug, Clone)]
pub struct SpectrogramMel {
    /// Number of STFT frames per batch.
    pub frames: u64,
    /// One-sided FFT bins per frame.
    pub bins: u64,
    /// Mel bands.
    pub bands: u64,
    /// Sample rate the filterbank is built for.
    pub sample_rate: f32,
}

impl SpectrogramMel {
    /// The default Sound Detection shape used in the system experiments
    /// (fits the paper's 8 MB intermediate batch at ~2000 frames).
    pub fn sound_detection(frames: u64) -> SpectrogramMel {
        SpectrogramMel {
            frames,
            bins: 257,
            bands: 26,
            sample_rate: 16_000.0,
        }
    }

    /// The mel filterbank, transposed to `bins x bands` (the layout the
    /// DRX kernel streams with unit inner stride).
    fn weights_t(&self) -> Vec<f32> {
        let fb = MelFilterbank::new(self.bands as usize, self.bins as usize, self.sample_rate);
        let w = fb.weights(); // bands x bins
        let mut t = vec![0.0f32; w.len()];
        for b in 0..self.bands as usize {
            for k in 0..self.bins as usize {
                t[k * self.bands as usize + b] = w[b * self.bins as usize + k];
            }
        }
        t
    }

    #[allow(clippy::type_complexity)]
    fn build_kernel(
        &self,
    ) -> (
        Kernel,
        dmx_drx::ir::BufId,
        dmx_drx::ir::BufId,
        dmx_drx::ir::BufId,
        Vec<u8>,
    ) {
        let (frames, bins, bands) = (self.frames, self.bins, self.bands);
        let mut k = Kernel::new("spectrogram_mel");
        let input = k.buffer("spectra", Dtype::F32, frames * bins * 2);
        let w_t = k.resident_buffer("mel_weights_t", Dtype::F32, bins * bands);
        let power = k.buffer("power", Dtype::F32, frames * bins);
        let mel = k.buffer("mel", Dtype::F32, frames * bands);
        let out = k.buffer("log_mel", Dtype::F32, frames * bands);

        // power[f][k] = re² ; power[f][k] += im²
        let d = [frames, bins];
        k.nest(
            d.to_vec(),
            vec![
                VecStmt {
                    op: VectorOp::Mul,
                    dst: Access {
                        buf: power,
                        offset: 0,
                        strides: vec![bins as i64, 1],
                    },
                    src0: Access {
                        buf: input,
                        offset: 0,
                        strides: vec![2 * bins as i64, 2],
                    },
                    src1: Some(Access {
                        buf: input,
                        offset: 0,
                        strides: vec![2 * bins as i64, 2],
                    }),
                    imm: 0.0,
                },
                VecStmt {
                    op: VectorOp::Mac,
                    dst: Access {
                        buf: power,
                        offset: 0,
                        strides: vec![bins as i64, 1],
                    },
                    src0: Access {
                        buf: input,
                        offset: 1,
                        strides: vec![2 * bins as i64, 2],
                    },
                    src1: Some(Access {
                        buf: input,
                        offset: 1,
                        strides: vec![2 * bins as i64, 2],
                    }),
                    imm: 0.0,
                },
            ],
        );

        // mel[f][m] += power[f][k] * w_t[k][m]
        k.nest(
            vec![frames, bins, bands],
            vec![VecStmt {
                op: VectorOp::Mac,
                dst: Access {
                    buf: mel,
                    offset: 0,
                    strides: vec![bands as i64, 0, 1],
                },
                src0: Access {
                    buf: power,
                    offset: 0,
                    strides: vec![bins as i64, 1, 0],
                },
                src1: Some(Access {
                    buf: w_t,
                    offset: 0,
                    strides: vec![0, bands as i64, 1],
                }),
                imm: 0.0,
            }],
        );

        // out[f][m] = ln(mel[f][m] + eps)
        k.nest(
            vec![frames, bands],
            vec![
                VecStmt {
                    op: VectorOp::AddS,
                    dst: Access {
                        buf: mel,
                        offset: 0,
                        strides: vec![bands as i64, 1],
                    },
                    src0: Access {
                        buf: mel,
                        offset: 0,
                        strides: vec![bands as i64, 1],
                    },
                    src1: None,
                    imm: 1e-6,
                },
                VecStmt {
                    op: VectorOp::Log,
                    dst: Access {
                        buf: out,
                        offset: 0,
                        strides: vec![bands as i64, 1],
                    },
                    src0: Access {
                        buf: mel,
                        offset: 0,
                        strides: vec![bands as i64, 1],
                    },
                    src1: None,
                    imm: 0.0,
                },
            ],
        );

        let w_bytes: Vec<u8> = self
            .weights_t()
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        (k, input, w_t, out, w_bytes)
    }
}

impl RestructureOp for SpectrogramMel {
    fn name(&self) -> &str {
        "spectrogram_mel"
    }

    fn profile(&self) -> OpProfile {
        let input_bytes = self.frames * self.bins * 8;
        let output_bytes = self.frames * self.bands * 4;
        let scratch_bytes = self.frames * self.bins * 4 + self.frames * self.bands * 4;
        let macs = self.frames * self.bins * (self.bands + 2);
        OpProfile {
            name: self.name().to_owned(),
            input_bytes,
            output_bytes,
            scratch_bytes,
            stream_passes: 4.0,
            ops_per_byte: macs as f64 / (input_bytes + output_bytes) as f64,
            branch_per_kb: 0.6,
            irregular: 0.0,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        let (frames, bins, bands) = (
            self.frames as usize,
            self.bins as usize,
            self.bands as usize,
        );
        assert_eq!(input.len(), frames * bins * 8, "input size mismatch");
        let spectra: Vec<f32> = input
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        // Mirror the DRX evaluation order exactly: f64 arithmetic with
        // f32 stores at every statement boundary.
        let mut power = vec![0.0f32; frames * bins];
        for f in 0..frames {
            for k in 0..bins {
                let re = spectra[(f * bins + k) * 2] as f64;
                power[f * bins + k] = (re * re) as f32;
            }
            for k in 0..bins {
                let im = spectra[(f * bins + k) * 2 + 1] as f64;
                let acc = power[f * bins + k] as f64;
                power[f * bins + k] = (acc + im * im) as f32;
            }
        }
        let w_t = self.weights_t();
        let mut mel = vec![0.0f32; frames * bands];
        for f in 0..frames {
            for k in 0..bins {
                for m in 0..bands {
                    let acc = mel[f * bands + m] as f64;
                    let p = power[f * bins + k] as f64;
                    let w = w_t[k * bands + m] as f64;
                    mel[f * bands + m] = (acc + p * w) as f32;
                }
            }
        }
        let mut out = Vec::with_capacity(frames * bands * 4);
        for v in &mut mel {
            *v = (*v as f64 + 1e-6) as f32;
        }
        for v in &mel {
            out.extend((v.ln()).to_le_bytes());
        }
        out
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        let (kernel, input, w_t, out, w_bytes) = self.build_kernel();
        let compiled = compile(&kernel, config)?;
        Ok(Lowered {
            inputs: vec![(compiled.layout.addr(input), self.frames * self.bins * 8)],
            outputs: vec![(compiled.layout.addr(out), self.frames * self.bands * 4)],
            consts: vec![(compiled.layout.addr(w_t), w_bytes)],
            dram_bytes: compiled.layout.total_bytes(),
            program: compiled.program,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{assert_cpu_drx_equal, run_on_drx};

    fn small() -> SpectrogramMel {
        SpectrogramMel {
            frames: 6,
            bins: 33,
            bands: 8,
            sample_rate: 8000.0,
        }
    }

    fn synth_input(op: &SpectrogramMel) -> Vec<u8> {
        let n = (op.frames * op.bins * 2) as usize;
        (0..n)
            .flat_map(|i| (((i * 37) % 101) as f32 * 0.25 - 10.0).to_le_bytes())
            .collect()
    }

    #[test]
    fn cpu_and_drx_agree() {
        let op = small();
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &synth_input(&op));
    }

    #[test]
    fn cpu_and_drx_agree_with_tiny_scratchpad() {
        let op = small();
        let cfg = DrxConfig::default().with_scratchpad(8 << 10); // force multi-tile schedules
        assert_cpu_drx_equal(&op, &cfg, &synth_input(&op));
    }

    #[test]
    fn output_matches_reference_mel_math() {
        // Independent check against dmx-kernels' own filterbank.
        let op = small();
        let input = synth_input(&op);
        let out = op.run_cpu(&input);
        let vals: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let fb = MelFilterbank::new(8, 33, 8000.0);
        let spectra: Vec<f32> = input
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        for f in 0..6usize {
            let power: Vec<f32> = (0..33)
                .map(|k| {
                    let re = spectra[(f * 33 + k) * 2];
                    let im = spectra[(f * 33 + k) * 2 + 1];
                    re * re + im * im
                })
                .collect();
            let expect = fb.apply(&power);
            for m in 0..8 {
                let got = vals[f * 8 + m];
                let want = (expect[m] + 1e-6).ln();
                assert!(
                    (got - want).abs() < want.abs() * 1e-3 + 1e-3,
                    "frame {f} band {m}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn sound_detection_shape_lowerable() {
        let op = SpectrogramMel::sound_detection(16);
        let lowered = op.lower(&DrxConfig::default()).unwrap();
        assert_eq!(lowered.input_bytes(), 16 * 257 * 8);
        assert_eq!(lowered.output_bytes(), 16 * 26 * 4);
        assert!(lowered.program.encoded_bytes() <= DrxConfig::default().icache_bytes);
    }

    #[test]
    fn drx_stats_reflect_work() {
        let op = small();
        let (_, stats) = run_on_drx(&op, &DrxConfig::default(), &synth_input(&op)).unwrap();
        // At least one MAC per (frame, bin, band).
        assert!(stats.lane_ops >= op.frames * op.bins * op.bands);
        assert!(stats.dram_bytes >= op.profile().input_bytes);
    }

    #[test]
    fn profile_is_consistent() {
        let p = small().profile();
        assert_eq!(p.input_bytes, 6 * 33 * 8);
        assert_eq!(p.output_bytes, 6 * 8 * 4);
        assert!(p.ops_per_byte > 1.0);
        assert!(p.irregular == 0.0);
    }
}
