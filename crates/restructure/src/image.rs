//! Frame-to-tensor restructuring (Video Surveillance): the video
//! decoder emits planar YUV 4:2:0 frames; the object-detection DNN
//! wants normalized planar RGB (NCHW) `f32`. The data motion step is
//! chroma upsampling, BT.601 color conversion, normalization, and the
//! NHWC→NCHW-style layout change — the branchiest of the five
//! restructuring ops on a CPU (Fig. 5's bad-speculation outlier).

use crate::op::{Lowered, OpError, OpProfile, RestructureOp};
use dmx_drx::ir::{Access, BufId, Kernel, VecStmt};
use dmx_drx::isa::{Dtype, VectorOp};
use dmx_drx::{compile, DrxConfig};

// BT.601 full-swing conversion, normalized to ~[0,1] then standardized
// with mean 0.5 / std 0.5 per channel. All constants are folded so every
// channel is an affine function of the scaled planes.
const Y_SCALE: f64 = 1.164 / 255.0;
const Y_BIAS: f64 = -16.0;
const C_BIAS: f64 = -128.0;
const C_SCALE: f64 = 1.0 / 255.0;
const STD: f64 = 0.5;
const MEAN: f64 = 0.5;
const K_RV: f64 = 1.596;
const K_GV: f64 = -0.813;
const K_GU: f64 = -0.391;
const K_BU: f64 = 2.018;

/// YUV 4:2:0 frame → normalized NCHW RGB `f32` tensor.
///
/// Input: `w*h` luma bytes, then `w*h/4` U bytes, then `w*h/4` V bytes.
/// Output: 3 planes of `w*h` `f32` each (R, G, B), concatenated.
#[derive(Debug, Clone)]
pub struct YuvToTensor {
    /// Frame width (even, and a multiple of 2 lanes at minimum).
    pub width: u64,
    /// Frame height (even).
    pub height: u64,
}

impl YuvToTensor {
    /// Creates the op.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or odd.
    pub fn new(width: u64, height: u64) -> YuvToTensor {
        assert!(width > 0 && height > 0, "empty frame");
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "dimensions must be even"
        );
        YuvToTensor { width, height }
    }

    fn coeffs() -> [f32; 4] {
        [
            (K_RV / STD) as f32,
            (K_GV / STD) as f32,
            (K_GU / STD) as f32,
            (K_BU / STD) as f32,
        ]
    }

    #[allow(clippy::type_complexity)]
    fn build_kernel(&self) -> (Kernel, [BufId; 3], [BufId; 3], BufId) {
        let (w, h) = (self.width, self.height);
        let (hw, qw) = (w * h, w * h / 4);
        let mut k = Kernel::new("yuv_to_tensor");
        let y = k.buffer("y", Dtype::U8, hw);
        let u = k.buffer("u", Dtype::U8, qw);
        let v = k.buffer("v", Dtype::U8, qw);
        let coef = k.resident_buffer("coef", Dtype::F32, 4);
        let yf = k.buffer("yf", Dtype::F32, hw);
        let uf = k.buffer("uf", Dtype::F32, qw);
        let vf = k.buffer("vf", Dtype::F32, qw);
        let out_r = k.buffer("out_r", Dtype::F32, hw);
        let out_g = k.buffer("out_g", Dtype::F32, hw);
        let out_b = k.buffer("out_b", Dtype::F32, hw);

        // Plane scaling: yf = (cast(y) + Y_BIAS) * (Y_SCALE / STD)
        let scale_nest = |k: &mut Kernel, src: BufId, dst: BufId, n: u64, bias: f64, scale: f64| {
            let dims = vec![n];
            k.nest(
                dims.clone(),
                vec![
                    VecStmt {
                        op: VectorOp::Cast(Dtype::F32),
                        dst: Access::row_major(dst, &dims),
                        src0: Access::row_major(src, &dims),
                        src1: None,
                        imm: 0.0,
                    },
                    VecStmt {
                        op: VectorOp::AddS,
                        dst: Access::row_major(dst, &dims),
                        src0: Access::row_major(dst, &dims),
                        src1: None,
                        imm: bias,
                    },
                    VecStmt {
                        op: VectorOp::MulS,
                        dst: Access::row_major(dst, &dims),
                        src0: Access::row_major(dst, &dims),
                        src1: None,
                        imm: scale,
                    },
                ],
            );
        };
        scale_nest(&mut k, y, yf, hw, Y_BIAS, Y_SCALE / STD);
        scale_nest(&mut k, u, uf, qw, C_BIAS, C_SCALE / STD);
        scale_nest(&mut k, v, vf, qw, C_BIAS, C_SCALE / STD);

        // Color conversion over [h/2, 2, 2, w/2]: inner dim is x2 so the
        // quarter-resolution chroma access stays affine.
        let dims = vec![h / 2, 2, 2, w / 2];
        let full = |buf: BufId| Access {
            buf,
            offset: 0,
            strides: vec![2 * w as i64, w as i64, 1, 2],
        };
        let quarter = |buf: BufId| Access {
            buf,
            offset: 0,
            strides: vec![(w / 2) as i64, 0, 0, 1],
        };
        let coef_at = |i: i64| Access {
            buf: coef,
            offset: i,
            strides: vec![0, 0, 0, 0],
        };
        let bias = (-(Y_SCALE * 16.0) - MEAN) / STD;
        let mut stmts = Vec::new();
        for (plane, chroma_terms) in [
            (out_r, vec![(vf, 0i64)]),
            (out_g, vec![(vf, 1), (uf, 2)]),
            (out_b, vec![(uf, 3)]),
        ] {
            stmts.push(VecStmt {
                op: VectorOp::Copy,
                dst: full(plane),
                src0: full(yf),
                src1: None,
                imm: 0.0,
            });
            for (cbuf, ci) in chroma_terms {
                stmts.push(VecStmt {
                    op: VectorOp::Mac,
                    dst: full(plane),
                    src0: quarter(cbuf),
                    src1: Some(coef_at(ci)),
                    imm: 0.0,
                });
            }
            stmts.push(VecStmt {
                op: VectorOp::AddS,
                dst: full(plane),
                src0: full(plane),
                src1: None,
                imm: bias,
            });
        }
        k.nest(dims, stmts);
        (k, [y, u, v], [out_r, out_g, out_b], coef)
    }
}

impl RestructureOp for YuvToTensor {
    fn name(&self) -> &str {
        "yuv_to_tensor"
    }

    fn profile(&self) -> OpProfile {
        let hw = self.width * self.height;
        let input_bytes = hw + hw / 2;
        let output_bytes = 3 * hw * 4;
        let scratch_bytes = hw * 4 + 2 * (hw / 4) * 4;
        OpProfile {
            name: self.name().to_owned(),
            input_bytes,
            output_bytes,
            scratch_bytes,
            stream_passes: 5.0,
            // casts + 2 affine steps per plane + ~2.7 ops/pixel color math
            ops_per_byte: 1.4,
            // Format/stride handling in scalar CPU code is branch-heavy —
            // the Fig. 5 bad-speculation outlier.
            branch_per_kb: 18.0,
            irregular: 0.05,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        let (w, h) = (self.width as usize, self.height as usize);
        let (hw, qw) = (w * h, w * h / 4);
        assert_eq!(input.len(), hw + 2 * qw, "input size mismatch");
        let (y, rest) = input.split_at(hw);
        let (u, v) = rest.split_at(qw);
        // Mirror the DRX statement order: f64 math, f32 stores.
        let scale = |src: &[u8], bias: f64, s: f64| -> Vec<f32> {
            src.iter()
                .map(|&b| {
                    let c = b as f64 as f32; // cast
                    let a = (c as f64 + bias) as f32; // AddS
                    ((a as f64) * s) as f32 // MulS
                })
                .collect()
        };
        let yf = scale(y, Y_BIAS, Y_SCALE / STD);
        let uf = scale(u, C_BIAS, C_SCALE / STD);
        let vf = scale(v, C_BIAS, C_SCALE / STD);
        let coef = Self::coeffs();
        let bias = (-(Y_SCALE * 16.0) - MEAN) / STD;
        let mut planes = [vec![0f32; hw], vec![0f32; hw], vec![0f32; hw]];
        // (plane, [(uses_v_plane, coefficient index)]) matching the DRX
        // statement order exactly.
        let recipes: [(usize, &[(bool, usize)]); 3] = [
            (0, &[(true, 0)]),             // R: vf * coef[0]
            (1, &[(true, 1), (false, 2)]), // G: vf * coef[1] + uf * coef[2]
            (2, &[(false, 3)]),            // B: uf * coef[3]
        ];
        for (p, terms) in recipes {
            for py in 0..h {
                for px in 0..w {
                    let i = py * w + px;
                    let ci = (py / 2) * (w / 2) + px / 2;
                    let mut acc = yf[i]; // Copy
                    for &(uses_v, c) in terms {
                        let chroma = if uses_v { vf[ci] } else { uf[ci] };
                        // Mac: f64 accumulate, f32 store
                        acc = ((acc as f64) + (chroma as f64) * (coef[c] as f64)) as f32;
                    }
                    acc = ((acc as f64) + bias) as f32; // AddS
                    planes[p][i] = acc;
                }
            }
        }
        let mut out = Vec::with_capacity(3 * hw * 4);
        for p in &planes {
            for v in p {
                out.extend(v.to_le_bytes());
            }
        }
        out
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        let (kernel, inputs, outputs, coef) = self.build_kernel();
        let compiled = compile(&kernel, config)?;
        let hw = self.width * self.height;
        let qw = hw / 4;
        let coef_bytes: Vec<u8> = Self::coeffs()
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        Ok(Lowered {
            inputs: vec![
                (compiled.layout.addr(inputs[0]), hw),
                (compiled.layout.addr(inputs[1]), qw),
                (compiled.layout.addr(inputs[2]), qw),
            ],
            outputs: outputs
                .iter()
                .map(|b| (compiled.layout.addr(*b), hw * 4))
                .collect(),
            consts: vec![(compiled.layout.addr(coef), coef_bytes)],
            dram_bytes: compiled.layout.total_bytes(),
            program: compiled.program,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{assert_cpu_drx_equal, run_on_drx};
    use dmx_kernels::video::synthetic_scene;

    fn frame_bytes(w: usize, h: usize) -> Vec<u8> {
        let f = &synthetic_scene(w, h, 3)[2];
        let mut b = f.y.clone();
        b.extend_from_slice(&f.u);
        b.extend_from_slice(&f.v);
        b
    }

    #[test]
    fn cpu_and_drx_agree() {
        let op = YuvToTensor::new(32, 16);
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &frame_bytes(32, 16));
    }

    #[test]
    fn cpu_and_drx_agree_multi_tile() {
        let op = YuvToTensor::new(64, 48);
        let cfg = DrxConfig::default().with_scratchpad(16 << 10);
        assert_cpu_drx_equal(&op, &cfg, &frame_bytes(64, 48));
    }

    #[test]
    fn bright_object_yields_extreme_channel_values() {
        let op = YuvToTensor::new(64, 48);
        let (out, _) = run_on_drx(&op, &DrxConfig::default(), &frame_bytes(64, 48)).unwrap();
        let vals: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        // The synthetic scene has V=200 tint: red plane must contain
        // clearly positive values where the object sits.
        let r = &vals[..64 * 48];
        assert!(r.iter().cloned().fold(f32::MIN, f32::max) > 1.0);
        assert!(vals.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn output_is_three_planes() {
        let op = YuvToTensor::new(16, 8);
        let lowered = op.lower(&DrxConfig::default()).unwrap();
        assert_eq!(lowered.outputs.len(), 3);
        assert_eq!(lowered.output_bytes(), 3 * 16 * 8 * 4);
        assert_eq!(lowered.input_bytes(), 16 * 8 * 3 / 2);
    }

    #[test]
    #[should_panic(expected = "dimensions must be even")]
    fn rejects_odd_dims() {
        YuvToTensor::new(15, 8);
    }

    #[test]
    fn profile_marks_branchiness() {
        let p = YuvToTensor::new(64, 48).profile();
        assert!(p.branch_per_kb > 10.0, "video restructuring is branchy");
        assert_eq!(p.input_bytes, 64 * 48 * 3 / 2);
        assert_eq!(p.output_bytes, 3 * 64 * 48 * 4);
    }
}
