//! The restructuring-operator abstraction.
//!
//! A [`RestructureOp`] is one data-motion step between two accelerators
//! (Table I's "Data Restructuring" column): it has a CPU reference
//! implementation, a lowering to a DRX program, and a [`OpProfile`]
//! describing the work so the host-CPU cost model (`dmx-cpu`) and the
//! Fig. 5 characterization can reason about it without executing it.

use dmx_drx::isa::Program;
use dmx_drx::machine::{ExecError, ExecStats};
use dmx_drx::{CompileError, DrxConfig, Machine};
use std::fmt;

/// Work characteristics of a restructuring op, per invocation.
///
/// These drive the CPU timing model and the top-down characterization:
/// restructuring ops are streaming (huge L1D/L2 MPKI), highly
/// vectorizable, with a small instruction working set (Sec. IV.A).
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Operator name.
    pub name: String,
    /// Bytes consumed.
    pub input_bytes: u64,
    /// Bytes produced.
    pub output_bytes: u64,
    /// Intermediate bytes written then re-read (extra traffic).
    pub scratch_bytes: u64,
    /// Total streaming passes over the working set (reads + writes,
    /// normalized to one working-set traversal each).
    pub stream_passes: f64,
    /// Vector ALU operations per byte moved.
    pub ops_per_byte: f64,
    /// Branch instructions per kilobyte processed (Video Surveillance's
    /// format handling is the branchy outlier in Fig. 5).
    pub branch_per_kb: f64,
    /// Fraction of accesses that are data-dependent (gather/scatter).
    pub irregular: f64,
}

impl OpProfile {
    /// Total bytes that cross the memory hierarchy.
    pub fn traffic_bytes(&self) -> u64 {
        self.input_bytes + self.output_bytes + 2 * self.scratch_bytes
    }
}

/// A DRX-executable form of an op: the program plus where to stage
/// input, constants, and output in DRX DRAM.
///
/// Inputs and outputs are ordered segment lists: the op's input byte
/// blob is split across the input segments in order, and the output
/// blob is the concatenation of the output segments (ops like the
/// YUV-to-tensor transform keep each plane in its own buffer).
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The compiled or hand-written DRX program.
    pub program: Program,
    /// `(dram_addr, bytes)` segments the input is written to, in order.
    pub inputs: Vec<(u64, u64)>,
    /// `(dram_addr, bytes)` segments the output is read from, in order.
    pub outputs: Vec<(u64, u64)>,
    /// Constant payloads (lookup tables, filter weights) and their
    /// DRAM addresses, written before execution.
    pub consts: Vec<(u64, Vec<u8>)>,
    /// Total DRAM footprint (used to size the machine).
    pub dram_bytes: u64,
}

impl Lowered {
    /// Total input bytes across segments.
    pub fn input_bytes(&self) -> u64 {
        self.inputs.iter().map(|(_, b)| b).sum()
    }

    /// Total output bytes across segments.
    pub fn output_bytes(&self) -> u64 {
        self.outputs.iter().map(|(_, b)| b).sum()
    }
}

/// Errors from lowering or executing an op on DRX.
#[derive(Debug)]
pub enum OpError {
    /// The affine compiler rejected the kernel.
    Compile(CompileError),
    /// The DRX machine faulted.
    Exec(ExecError),
    /// The provided input has the wrong size.
    InputSize {
        /// Expected bytes.
        expected: u64,
        /// Provided bytes.
        got: u64,
    },
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Compile(e) => write!(f, "lowering failed: {e}"),
            OpError::Exec(e) => write!(f, "DRX execution failed: {e}"),
            OpError::InputSize { expected, got } => {
                write!(f, "input size mismatch: expected {expected} B, got {got} B")
            }
        }
    }
}

impl std::error::Error for OpError {}

impl From<CompileError> for OpError {
    fn from(e: CompileError) -> Self {
        OpError::Compile(e)
    }
}

impl From<ExecError> for OpError {
    fn from(e: ExecError) -> Self {
        OpError::Exec(e)
    }
}

/// One data-restructuring operator.
///
/// `Send + Sync` so benchmarks holding boxed ops can be shared across
/// the parallel sweep runner's worker threads; ops are plain data.
pub trait RestructureOp: fmt::Debug + Send + Sync {
    /// Operator name (diagnostics and reports).
    fn name(&self) -> &str;

    /// Work profile per invocation.
    fn profile(&self) -> OpProfile;

    /// Reference CPU implementation. Must be semantically identical to
    /// the DRX lowering (bit-for-bit for integer data; float results
    /// follow the DRX evaluation order: f64 arithmetic, f32 storage).
    ///
    /// # Panics
    ///
    /// Implementations panic if `input` has the wrong size.
    fn run_cpu(&self, input: &[u8]) -> Vec<u8>;

    /// Lowers the op for a DRX configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OpError::Compile`] when the op does not fit the
    /// configuration.
    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError>;
}

/// Executes `op` on a freshly configured DRX machine and returns the
/// output bytes and execution statistics.
///
/// # Errors
///
/// Returns an [`OpError`] on size mismatch, lowering failure, or
/// machine fault.
pub fn run_on_drx(
    op: &dyn RestructureOp,
    config: &DrxConfig,
    input: &[u8],
) -> Result<(Vec<u8>, ExecStats), OpError> {
    run_on_drx_with_flips(op, config, input, &[])
}

/// [`run_on_drx`] with silent bit flips injected into the staged input
/// after it lands in device DRAM and before the program runs — the
/// functional half of the SDC fault model. Each `(offset, bit)` pair
/// indexes into the op's *logical input buffer* (the same bytes
/// `input` holds), so a flip corrupts exactly one staged input bit and
/// the corruption propagates through the real restructuring datapath
/// into the output, where blast radius can be measured. Offsets at or
/// past the input end are ignored.
///
/// # Errors
///
/// Returns an [`OpError`] on size mismatch, lowering failure, or
/// machine fault.
pub fn run_on_drx_with_flips(
    op: &dyn RestructureOp,
    config: &DrxConfig,
    input: &[u8],
    flips: &[(u64, u8)],
) -> Result<(Vec<u8>, ExecStats), OpError> {
    let lowered = op.lower(config)?;
    if input.len() as u64 != lowered.input_bytes() {
        return Err(OpError::InputSize {
            expected: lowered.input_bytes(),
            got: input.len() as u64,
        });
    }
    let mut cfg = *config;
    cfg.dram.capacity_bytes = cfg.dram.capacity_bytes.max(lowered.dram_bytes + (1 << 20));
    let mut machine = Machine::new(cfg);
    for (addr, data) in &lowered.consts {
        machine.write_dram(*addr, data);
    }
    let mut cursor = 0usize;
    for &(addr, bytes) in &lowered.inputs {
        machine.write_dram(addr, &input[cursor..cursor + bytes as usize]);
        cursor += bytes as usize;
    }
    // Map logical-input offsets onto the staged DRAM regions. Input
    // regions are staged back to back, so a logical offset lands in
    // the region whose cumulative range covers it.
    for &(offset, bit) in flips {
        let mut base = 0u64;
        for &(addr, bytes) in &lowered.inputs {
            if offset < base + bytes {
                machine.flip_dram_bit(addr + (offset - base), bit);
                break;
            }
            base += bytes;
        }
    }
    let stats = machine.run(&lowered.program)?;
    let mut out = Vec::with_capacity(lowered.output_bytes() as usize);
    for &(addr, bytes) in &lowered.outputs {
        out.extend(machine.read_dram(addr, bytes));
    }
    Ok((out, stats))
}

/// Runs the op on both CPU and DRX and asserts identical output
/// (test helper used across the op modules and integration tests).
///
/// # Panics
///
/// Panics if outputs differ or execution fails.
pub fn assert_cpu_drx_equal(op: &dyn RestructureOp, config: &DrxConfig, input: &[u8]) {
    let cpu = op.run_cpu(input);
    let (drx, _) = run_on_drx(op, config, input).unwrap_or_else(|e| {
        panic!("{}: DRX run failed: {e}", op.name());
    });
    assert_eq!(
        cpu.len(),
        drx.len(),
        "{}: output sizes differ (cpu {} vs drx {})",
        op.name(),
        cpu.len(),
        drx.len()
    );
    for (i, (a, b)) in cpu.iter().zip(&drx).enumerate() {
        assert_eq!(a, b, "{}: outputs differ at byte {i}", op.name());
    }
}
