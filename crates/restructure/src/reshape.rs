//! Reshape / typecast / normalization restructuring ops:
//!
//! * [`BandPower`] — Brain Stimulation's data motion: complex EM
//!   spectra → per-band power features, normalized for the RL policy.
//! * [`QuantizeTensor`] — the Fig. 16 "reshaping and typecasting" step
//!   in front of the NER kernel: `f32` activations → saturated `i8`.
//! * [`EndianSwap`] — byte-order conversion between accelerators that
//!   disagree on endianness (part of the Database pipeline).
//! * [`PadFrame`] — zero-padding a 2-D tile into a fixed-size frame
//!   (DNN inputs want fixed spatial dimensions).

use crate::op::{Lowered, OpError, OpProfile, RestructureOp};
use dmx_drx::ir::{Access, Kernel, VecStmt};
use dmx_drx::isa::{Dtype, VectorOp};
use dmx_drx::{compile, DrxConfig};

/// Complex spectra → normalized per-band power (Brain Stimulation).
///
/// Input: `frames x bins` interleaved complex `f32`.
/// Output: `frames x bands` `f32`, scaled by `scale` and shifted by
/// `bias`. `bins` must be a multiple of `bands` (uniform bands).
#[derive(Debug, Clone)]
pub struct BandPower {
    /// Spectral frames per batch.
    pub frames: u64,
    /// Bins per frame.
    pub bins: u64,
    /// Uniform output bands.
    pub bands: u64,
    /// Normalization scale.
    pub scale: f64,
    /// Normalization bias.
    pub bias: f64,
}

impl BandPower {
    /// Creates the op.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is not a multiple of `bands`.
    pub fn new(frames: u64, bins: u64, bands: u64, scale: f64, bias: f64) -> BandPower {
        assert!(
            bands > 0 && bins.is_multiple_of(bands),
            "bins must divide into bands"
        );
        BandPower {
            frames,
            bins,
            bands,
            scale,
            bias,
        }
    }
}

impl RestructureOp for BandPower {
    fn name(&self) -> &str {
        "band_power"
    }

    fn profile(&self) -> OpProfile {
        let input_bytes = self.frames * self.bins * 8;
        let output_bytes = self.frames * self.bands * 4;
        OpProfile {
            name: self.name().to_owned(),
            input_bytes,
            output_bytes,
            scratch_bytes: self.frames * self.bins * 4,
            stream_passes: 3.0,
            ops_per_byte: 0.8,
            branch_per_kb: 0.5,
            irregular: 0.0,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        let (frames, bins, bands) = (
            self.frames as usize,
            self.bins as usize,
            self.bands as usize,
        );
        assert_eq!(input.len(), frames * bins * 8, "input size mismatch");
        let spectra: Vec<f32> = input
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        let k0 = bins / bands;
        let mut power = vec![0.0f32; frames * bins];
        for f in 0..frames {
            for k in 0..bins {
                let re = spectra[(f * bins + k) * 2] as f64;
                power[f * bins + k] = (re * re) as f32;
            }
            for k in 0..bins {
                let im = spectra[(f * bins + k) * 2 + 1] as f64;
                let acc = power[f * bins + k] as f64;
                power[f * bins + k] = (acc + im * im) as f32;
            }
        }
        let mut band = vec![0.0f32; frames * bands];
        for f in 0..frames {
            for k in 0..k0 {
                for b in 0..bands {
                    let acc = band[f * bands + b] as f64;
                    let p = power[f * bins + b * k0 + k] as f64;
                    band[f * bands + b] = (acc + p) as f32;
                }
            }
        }
        let mut out = Vec::with_capacity(frames * bands * 4);
        for v in &band {
            let scaled = ((*v as f64) * self.scale) as f32;
            let shifted = ((scaled as f64) + self.bias) as f32;
            out.extend(shifted.to_le_bytes());
        }
        out
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        let (frames, bins, bands) = (self.frames, self.bins, self.bands);
        let k0 = bins / bands;
        let mut k = Kernel::new("band_power");
        let input = k.buffer("spectra", Dtype::F32, frames * bins * 2);
        let one = k.resident_buffer("one", Dtype::F32, 1);
        let power = k.buffer("power", Dtype::F32, frames * bins);
        let band = k.buffer("band", Dtype::F32, frames * bands);
        let out = k.buffer("out", Dtype::F32, frames * bands);
        let pw = |off: i64| Access {
            buf: input,
            offset: off,
            strides: vec![2 * bins as i64, 2],
        };
        k.nest(
            vec![frames, bins],
            vec![
                VecStmt {
                    op: VectorOp::Mul,
                    dst: Access {
                        buf: power,
                        offset: 0,
                        strides: vec![bins as i64, 1],
                    },
                    src0: pw(0),
                    src1: Some(pw(0)),
                    imm: 0.0,
                },
                VecStmt {
                    op: VectorOp::Mac,
                    dst: Access {
                        buf: power,
                        offset: 0,
                        strides: vec![bins as i64, 1],
                    },
                    src0: pw(1),
                    src1: Some(pw(1)),
                    imm: 0.0,
                },
            ],
        );
        // band[f][b] += power[f][b*k0 + k] over k (vectorized over b)
        k.nest(
            vec![frames, k0, bands],
            vec![VecStmt {
                op: VectorOp::Mac,
                dst: Access {
                    buf: band,
                    offset: 0,
                    strides: vec![bands as i64, 0, 1],
                },
                src0: Access {
                    buf: power,
                    offset: 0,
                    strides: vec![bins as i64, 1, k0 as i64],
                },
                src1: Some(Access::broadcast(one, 3, 0)),
                imm: 0.0,
            }],
        );
        // normalize into out
        k.nest(
            vec![frames * bands],
            vec![
                VecStmt {
                    op: VectorOp::MulS,
                    dst: Access::row_major(out, &[frames * bands]),
                    src0: Access::row_major(band, &[frames * bands]),
                    src1: None,
                    imm: self.scale,
                },
                VecStmt {
                    op: VectorOp::AddS,
                    dst: Access::row_major(out, &[frames * bands]),
                    src0: Access::row_major(out, &[frames * bands]),
                    src1: None,
                    imm: self.bias,
                },
            ],
        );
        let compiled = compile(&k, config)?;
        Ok(Lowered {
            inputs: vec![(compiled.layout.addr(input), frames * bins * 8)],
            outputs: vec![(compiled.layout.addr(out), frames * bands * 4)],
            consts: vec![(compiled.layout.addr(one), 1f32.to_le_bytes().to_vec())],
            dram_bytes: compiled.layout.total_bytes(),
            program: compiled.program,
        })
    }
}

/// `f32` → saturated `i8` quantization with a scale (the Fig. 16
/// reshape/typecast step).
#[derive(Debug, Clone)]
pub struct QuantizeTensor {
    /// Element count.
    pub elems: u64,
    /// Multiplier applied before rounding toward zero.
    pub scale: f64,
}

impl RestructureOp for QuantizeTensor {
    fn name(&self) -> &str {
        "quantize_tensor"
    }

    fn profile(&self) -> OpProfile {
        OpProfile {
            name: self.name().to_owned(),
            input_bytes: self.elems * 4,
            output_bytes: self.elems,
            scratch_bytes: self.elems * 4,
            stream_passes: 2.0,
            ops_per_byte: 0.8,
            branch_per_kb: 0.4,
            irregular: 0.0,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        assert_eq!(input.len() as u64, self.elems * 4, "input size mismatch");
        input
            .chunks_exact(4)
            .map(|c| {
                let x = f32::from_le_bytes(c.try_into().expect("sized"));
                let scaled = ((x as f64) * self.scale) as f32;
                let lo = ((scaled as f64).min(127.0)) as f32;
                let hi = ((lo as f64).max(-128.0)) as f32;
                hi as i8 as u8
            })
            .collect()
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        let n = self.elems;
        let mut k = Kernel::new("quantize");
        let input = k.buffer("in", Dtype::F32, n);
        let tmp = k.buffer("tmp", Dtype::F32, n);
        let out = k.buffer("out", Dtype::I8, n);
        let acc = |b| Access::row_major(b, &[n]);
        k.nest(
            vec![n],
            vec![
                VecStmt {
                    op: VectorOp::MulS,
                    dst: acc(tmp),
                    src0: acc(input),
                    src1: None,
                    imm: self.scale,
                },
                VecStmt {
                    op: VectorOp::MinS,
                    dst: acc(tmp),
                    src0: acc(tmp),
                    src1: None,
                    imm: 127.0,
                },
                VecStmt {
                    op: VectorOp::MaxS,
                    dst: acc(tmp),
                    src0: acc(tmp),
                    src1: None,
                    imm: -128.0,
                },
                VecStmt {
                    op: VectorOp::Cast(Dtype::I8),
                    dst: acc(out),
                    src0: acc(tmp),
                    src1: None,
                    imm: 0.0,
                },
            ],
        );
        let compiled = compile(&k, config)?;
        Ok(Lowered {
            inputs: vec![(compiled.layout.addr(input), n * 4)],
            outputs: vec![(compiled.layout.addr(out), n)],
            consts: vec![],
            dram_bytes: compiled.layout.total_bytes(),
            program: compiled.program,
        })
    }
}

/// 32-bit endianness swap.
#[derive(Debug, Clone)]
pub struct EndianSwap {
    /// Number of `u32` words.
    pub words: u64,
}

impl RestructureOp for EndianSwap {
    fn name(&self) -> &str {
        "endian_swap"
    }

    fn profile(&self) -> OpProfile {
        OpProfile {
            name: self.name().to_owned(),
            input_bytes: self.words * 4,
            output_bytes: self.words * 4,
            scratch_bytes: 0,
            stream_passes: 2.0,
            ops_per_byte: 0.25,
            branch_per_kb: 0.2,
            irregular: 0.0,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        assert_eq!(input.len() as u64, self.words * 4, "input size mismatch");
        input
            .chunks_exact(4)
            .flat_map(|c| {
                u32::from_le_bytes(c.try_into().expect("sized"))
                    .swap_bytes()
                    .to_le_bytes()
            })
            .collect()
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        let n = self.words;
        let mut k = Kernel::new("bswap");
        let input = k.buffer("in", Dtype::U32, n);
        let out = k.buffer("out", Dtype::U32, n);
        k.nest(
            vec![n],
            vec![VecStmt {
                op: VectorOp::Bswap,
                dst: Access::row_major(out, &[n]),
                src0: Access::row_major(input, &[n]),
                src1: None,
                imm: 0.0,
            }],
        );
        let compiled = compile(&k, config)?;
        Ok(Lowered {
            inputs: vec![(compiled.layout.addr(input), n * 4)],
            outputs: vec![(compiled.layout.addr(out), n * 4)],
            consts: vec![],
            dram_bytes: compiled.layout.total_bytes(),
            program: compiled.program,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::assert_cpu_drx_equal;

    #[test]
    fn band_power_cpu_drx_agree() {
        let op = BandPower::new(4, 32, 8, 0.5, -1.0);
        let input: Vec<u8> = (0..4 * 32 * 2)
            .flat_map(|i| ((i % 17) as f32 * 0.3 - 2.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &input);
    }

    #[test]
    fn band_power_multi_tile() {
        let op = BandPower::new(40, 32, 8, 1.0, 0.0);
        let input: Vec<u8> = (0..40 * 32 * 2)
            .flat_map(|i| ((i % 13) as f32).to_le_bytes())
            .collect();
        let cfg = DrxConfig::default().with_scratchpad(4 << 10);
        assert_cpu_drx_equal(&op, &cfg, &input);
    }

    #[test]
    fn band_power_sums_uniform_bands() {
        let op = BandPower::new(1, 8, 2, 1.0, 0.0);
        // spectra with re=1, im=0 everywhere: power = 1 per bin,
        // each band sums 4 bins -> 4.0
        let input: Vec<u8> = (0..16)
            .flat_map(|i| if i % 2 == 0 { 1.0f32 } else { 0.0 }.to_le_bytes())
            .collect();
        let out = op.run_cpu(&input);
        let vals: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![4.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "bins must divide")]
    fn band_power_validates_shape() {
        BandPower::new(1, 10, 3, 1.0, 0.0);
    }

    #[test]
    fn quantize_cpu_drx_agree() {
        let op = QuantizeTensor {
            elems: 500,
            scale: 20.0,
        };
        let input: Vec<u8> = (0..500)
            .flat_map(|i| ((i as f32 - 250.0) * 0.1).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &input);
    }

    #[test]
    fn quantize_saturates() {
        let op = QuantizeTensor {
            elems: 3,
            scale: 100.0,
        };
        let input: Vec<u8> = [10.0f32, -10.0, 0.5]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let out = op.run_cpu(&input);
        assert_eq!(out[0] as i8, 127);
        assert_eq!(out[1] as i8, -128);
        assert_eq!(out[2] as i8, 50);
    }

    #[test]
    fn endian_swap_cpu_drx_agree() {
        let op = EndianSwap { words: 300 };
        let input: Vec<u8> = (0..1200).map(|i| (i % 251) as u8).collect();
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &input);
    }

    #[test]
    fn endian_swap_is_involution() {
        let op = EndianSwap { words: 64 };
        let input: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let once = op.run_cpu(&input);
        let twice = op.run_cpu(&once);
        assert_eq!(twice, input);
    }
}

/// Zero-padding of a 2-D `f32` tile into a larger frame (the "padding"
/// step of Table I's restructuring inventory: DNN inputs want fixed
/// spatial dimensions).
///
/// Input: `rows_in x cols_in` `f32` row-major. Output:
/// `rows_out x cols_out`, with the input in the top-left corner and
/// zeros elsewhere.
#[derive(Debug, Clone)]
pub struct PadFrame {
    /// Input rows.
    pub rows_in: u64,
    /// Input columns.
    pub cols_in: u64,
    /// Output rows (>= rows_in).
    pub rows_out: u64,
    /// Output columns (>= cols_in).
    pub cols_out: u64,
}

impl PadFrame {
    /// Creates the op.
    ///
    /// # Panics
    ///
    /// Panics if the output is smaller than the input in either
    /// dimension, or any dimension is zero.
    pub fn new(rows_in: u64, cols_in: u64, rows_out: u64, cols_out: u64) -> PadFrame {
        assert!(rows_in > 0 && cols_in > 0, "empty input");
        assert!(
            rows_out >= rows_in && cols_out >= cols_in,
            "output must contain the input"
        );
        PadFrame {
            rows_in,
            cols_in,
            rows_out,
            cols_out,
        }
    }
}

impl RestructureOp for PadFrame {
    fn name(&self) -> &str {
        "pad_frame"
    }

    fn profile(&self) -> OpProfile {
        OpProfile {
            name: self.name().to_owned(),
            input_bytes: self.rows_in * self.cols_in * 4,
            output_bytes: self.rows_out * self.cols_out * 4,
            scratch_bytes: 0,
            stream_passes: 2.0,
            ops_per_byte: 0.1,
            branch_per_kb: 2.0,
            irregular: 0.0,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        let (ri, ci) = (self.rows_in as usize, self.cols_in as usize);
        let (ro, co) = (self.rows_out as usize, self.cols_out as usize);
        assert_eq!(input.len(), ri * ci * 4, "input size mismatch");
        let mut out = vec![0u8; ro * co * 4];
        for r in 0..ri {
            let src = r * ci * 4;
            let dst = r * co * 4;
            out[dst..dst + ci * 4].copy_from_slice(&input[src..src + ci * 4]);
        }
        out
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        let mut k = Kernel::new("pad_frame");
        let input = k.buffer("in", Dtype::F32, self.rows_in * self.cols_in);
        let out = k.buffer("out", Dtype::F32, self.rows_out * self.cols_out);
        // DRAM starts zeroed, so only the payload needs copying; the
        // destination access has holes (padding), which the compiler
        // detects and preserves with load-before-store.
        k.nest(
            vec![self.rows_in, self.cols_in],
            vec![VecStmt {
                op: VectorOp::Copy,
                dst: Access {
                    buf: out,
                    offset: 0,
                    strides: vec![self.cols_out as i64, 1],
                },
                src0: Access {
                    buf: input,
                    offset: 0,
                    strides: vec![self.cols_in as i64, 1],
                },
                src1: None,
                imm: 0.0,
            }],
        );
        let compiled = compile(&k, config)?;
        Ok(Lowered {
            inputs: vec![(compiled.layout.addr(input), self.rows_in * self.cols_in * 4)],
            outputs: vec![(compiled.layout.addr(out), self.rows_out * self.cols_out * 4)],
            consts: vec![],
            dram_bytes: compiled.layout.total_bytes(),
            program: compiled.program,
        })
    }
}

#[cfg(test)]
mod pad_tests {
    use super::*;
    use crate::op::assert_cpu_drx_equal;

    fn tile(rows: u64, cols: u64) -> Vec<u8> {
        (0..rows * cols)
            .flat_map(|i| ((i + 1) as f32).to_le_bytes())
            .collect()
    }

    #[test]
    fn cpu_and_drx_agree() {
        let op = PadFrame::new(24, 30, 32, 32);
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &tile(24, 30));
    }

    #[test]
    fn cpu_and_drx_agree_small_spad() {
        let op = PadFrame::new(100, 60, 128, 64);
        let cfg = DrxConfig::default().with_scratchpad(4 << 10);
        assert_cpu_drx_equal(&op, &cfg, &tile(100, 60));
    }

    #[test]
    fn padding_region_is_zero() {
        let op = PadFrame::new(2, 2, 3, 4);
        let out = op.run_cpu(&tile(2, 2));
        let vals: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(
            vals,
            vec![1.0, 2.0, 0.0, 0.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn identity_pad_is_a_copy() {
        let op = PadFrame::new(8, 8, 8, 8);
        let input = tile(8, 8);
        assert_eq!(op.run_cpu(&input), input);
    }

    #[test]
    #[should_panic(expected = "output must contain the input")]
    fn rejects_shrinking() {
        PadFrame::new(8, 8, 4, 8);
    }
}
