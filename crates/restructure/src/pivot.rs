//! Database restructuring ops (Database Hash Join, Table I): the
//! decompressor emits row-major records; the join accelerator wants
//! column-major arrays, native endianness, and hash-partitioned keys.
//!
//! These two ops are *hand-written* DRX programs rather than affine
//! kernels: [`DbPivot`] drives the Transposition Engine block by block,
//! and [`HashPartition`] runs in the DRX's scalar mode (Sec. IV.B:
//! "DRX turns off all but one REs and operates as a scalar in-order
//! CPU") — partitioning is the data-dependent, serial tail of the
//! database data motion.

use crate::op::{Lowered, OpError, OpProfile, RestructureOp};
use dmx_drx::isa::{
    DmaDir, DramAddr, Dtype, Instr, Port, Program, ScalarInstr, ScalarOp, SyncKind, VectorOp,
};
use dmx_drx::DrxConfig;

const ALIGN: u64 = 64;

fn align(x: u64) -> u64 {
    x.div_ceil(ALIGN) * ALIGN
}

/// Row-major `u32` table → column-major, with endianness swap.
///
/// Input: `rows x cols` `u32` row-major. Output: `cols x rows` `u32`
/// (column-major view of the same table), every word byte-swapped.
#[derive(Debug, Clone)]
pub struct DbPivot {
    /// Row count.
    pub rows: u64,
    /// Column (field) count.
    pub cols: u64,
}

impl DbPivot {
    /// Creates the op.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new(rows: u64, cols: u64) -> DbPivot {
        assert!(rows > 0 && cols > 0, "empty table");
        DbPivot { rows, cols }
    }
}

/// Shared Transposition-Engine program builder: streams `rows x cols`
/// row-major tiles of `dtype` elements, transposes each block, optionally
/// byte-swaps it, and scatters the column segments back to DRAM. Used by
/// [`DbPivot`] (u32 + bswap) and [`Deinterleave`] (f32, no swap).
fn build_block_transpose(
    rows: u64,
    cols: u64,
    dtype: dmx_drx::isa::Dtype,
    bswap: bool,
    config: &DrxConfig,
) -> Result<Lowered, OpError> {
    let elem = dtype.size();
    let budget = config.scratchpad_bytes / 2;
    let max_br = (budget / (cols * elem)).min(rows);
    let br = (1..=max_br)
        .rev()
        .find(|b| rows.is_multiple_of(*b))
        .ok_or(OpError::Compile(
            dmx_drx::CompileError::WorkingSetTooLarge {
                nest: 0,
                need: cols * elem * 2,
                avail: config.scratchpad_bytes,
            },
        ))?;
    let nblocks = rows / br;
    let bytes = rows * cols * elem;
    let block_bytes = br * cols * elem;
    let in_addr = 0u64;
    let out_addr = align(bytes) + config.scratchpad_bytes; // slack
    let tile = 0u64;
    let trans = align(block_bytes);

    let lanes = config.lanes as u64;
    let words_per_block = br * cols;
    let chunks = words_per_block / lanes;
    let rem = words_per_block % lanes;

    let mut p = Program::new();
    p.push(Instr::Sync(SyncKind::Start));
    p.push(Instr::Scalar(ScalarInstr::LdImm {
        rd: 1,
        imm: in_addr as i64,
    }));
    p.push(Instr::Scalar(ScalarInstr::LdImm {
        rd: 2,
        imm: out_addr as i64,
    }));

    let mut body = vec![
        Instr::Dma {
            dir: DmaDir::Load,
            dram: DramAddr::Reg { reg: 1, offset: 0 },
            spad: tile,
            bytes: block_bytes,
        },
        Instr::Sync(SyncKind::WaitMemAll),
        Instr::SetBase {
            port: Port::Src0,
            addr: tile,
        },
        Instr::SetBase {
            port: Port::Dst,
            addr: trans,
        },
        Instr::Transpose {
            rows: br as u32,
            cols: cols as u32,
            dtype,
        },
    ];
    if bswap {
        // In-place byte swap of the transposed block.
        let emit = |base_shift: u64, count: u64, vlen: u64, body: &mut Vec<Instr>| {
            body.push(Instr::LoopDims {
                dims: [1, 1, 1, count as u32],
            });
            for port in [Port::Src0, Port::Dst] {
                body.push(Instr::SetStride {
                    port,
                    strides: [0, 0, 0, (elem * lanes) as i64],
                    lane_stride: elem as i64,
                });
                body.push(Instr::SetBase {
                    port,
                    addr: trans + base_shift,
                });
            }
            body.push(Instr::Vec {
                op: VectorOp::Bswap,
                dtype,
                vlen: vlen as u32,
                imm: 0.0,
            });
        };
        if chunks > 0 {
            emit(0, chunks, lanes, &mut body);
        }
        if rem > 0 {
            emit(chunks * lanes * elem, 1, rem, &mut body);
        }
    }
    body.push(Instr::Sync(SyncKind::WaitVec));
    // Store every column segment: column c is `br` contiguous elements
    // of the transposed tile, landing at out + c*rows*elem + blk*br*elem.
    for c in 0..cols {
        body.push(Instr::Dma {
            dir: DmaDir::Store,
            dram: DramAddr::Reg {
                reg: 2,
                offset: (c * rows * elem) as i64,
            },
            spad: trans + c * br * elem,
            bytes: br * elem,
        });
    }
    body.push(Instr::Scalar(ScalarInstr::AddImm {
        rd: 1,
        rs: 1,
        imm: block_bytes as i64,
    }));
    body.push(Instr::Scalar(ScalarInstr::AddImm {
        rd: 2,
        rs: 2,
        imm: (br * elem) as i64,
    }));

    if nblocks > 1 {
        p.push(Instr::Repeat {
            count: nblocks as u32,
            body: body.len() as u32,
        });
    }
    p.extend(body);
    p.push(Instr::Sync(SyncKind::End));
    p.push(Instr::Halt);

    Ok(Lowered {
        program: p,
        inputs: vec![(in_addr, bytes)],
        outputs: vec![(out_addr, bytes)],
        consts: vec![],
        dram_bytes: out_addr + bytes + config.scratchpad_bytes,
    })
}

impl RestructureOp for DbPivot {
    fn name(&self) -> &str {
        "db_pivot"
    }

    fn profile(&self) -> OpProfile {
        let bytes = self.rows * self.cols * 4;
        OpProfile {
            name: self.name().to_owned(),
            input_bytes: bytes,
            output_bytes: bytes,
            scratch_bytes: 0,
            stream_passes: 2.0,
            ops_per_byte: 0.5,
            branch_per_kb: 1.5,
            // A 4-byte-element transpose scatters every store to a new
            // cache line — the classic write-allocate wasteland.
            irregular: 0.8,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        let (rows, cols) = (self.rows as usize, self.cols as usize);
        assert_eq!(input.len(), rows * cols * 4, "input size mismatch");
        let words: Vec<u32> = input
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        let mut out = Vec::with_capacity(input.len());
        for c in 0..cols {
            for r in 0..rows {
                out.extend(words[r * cols + c].swap_bytes().to_le_bytes());
            }
        }
        out
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        build_block_transpose(self.rows, self.cols, Dtype::U32, true, config)
    }
}

/// Array-of-structures → structure-of-arrays deinterleave of `f32`
/// records (e.g. interleaved complex or multi-channel samples into
/// planar layout) on the Transposition Engine.
///
/// Input: `records x fields` `f32` row-major. Output: `fields` planar
/// arrays of `records` `f32` each, concatenated.
#[derive(Debug, Clone)]
pub struct Deinterleave {
    /// Number of records (rows).
    pub records: u64,
    /// Fields per record (columns / channels).
    pub fields: u64,
}

impl Deinterleave {
    /// Creates the op.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new(records: u64, fields: u64) -> Deinterleave {
        assert!(records > 0 && fields > 0, "empty layout");
        Deinterleave { records, fields }
    }
}

impl RestructureOp for Deinterleave {
    fn name(&self) -> &str {
        "deinterleave"
    }

    fn profile(&self) -> OpProfile {
        let bytes = self.records * self.fields * 4;
        OpProfile {
            name: self.name().to_owned(),
            input_bytes: bytes,
            output_bytes: bytes,
            scratch_bytes: 0,
            stream_passes: 2.0,
            ops_per_byte: 0.25,
            branch_per_kb: 1.0,
            irregular: 0.7,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        let (n, c) = (self.records as usize, self.fields as usize);
        assert_eq!(input.len(), n * c * 4, "input size mismatch");
        let mut out = vec![0u8; input.len()];
        for r in 0..n {
            for f in 0..c {
                let src = (r * c + f) * 4;
                let dst = (f * n + r) * 4;
                out[dst..dst + 4].copy_from_slice(&input[src..src + 4]);
            }
        }
        out
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        build_block_transpose(self.records, self.fields, Dtype::F32, false, config)
    }
}

/// Scalar-mode hash partitioning of `u32` keys into `parts` buckets
/// (stable counting sort by multiplicative hash).
///
/// Input: `keys` `u32` words. Output: the same words grouped by
/// partition id, order preserved within a partition. The whole input
/// must fit the scratchpad (partitioning large tables chains this op
/// over slices).
#[derive(Debug, Clone)]
pub struct HashPartition {
    /// Number of `u32` keys.
    pub keys: u64,
    /// Number of partitions (power of two, <= 256).
    pub parts: u64,
}

/// The multiplicative hash constant shared with `dmx_kernels::join`.
pub const HASH_K: u64 = 2_654_435_769;

/// Partition id of a key (shared by CPU and DRX implementations).
pub fn partition_id(key: u32, parts: u64) -> u64 {
    let b = parts.trailing_zeros();
    ((key as u64).wrapping_mul(HASH_K) & 0xFFFF_FFFF) >> (32 - b)
}

impl HashPartition {
    /// Creates the op.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is not a power of two in `2..=256` or `keys`
    /// is zero.
    pub fn new(keys: u64, parts: u64) -> HashPartition {
        assert!(keys > 0, "no keys");
        assert!(
            parts.is_power_of_two() && (2..=256).contains(&parts),
            "parts must be a power of two in 2..=256"
        );
        HashPartition { keys, parts }
    }
}

impl RestructureOp for HashPartition {
    fn name(&self) -> &str {
        "hash_partition"
    }

    fn profile(&self) -> OpProfile {
        OpProfile {
            name: self.name().to_owned(),
            input_bytes: self.keys * 4,
            output_bytes: self.keys * 4,
            scratch_bytes: self.parts * 8,
            stream_passes: 3.0,
            ops_per_byte: 2.0,
            branch_per_kb: 30.0,
            irregular: 1.0,
        }
    }

    fn run_cpu(&self, input: &[u8]) -> Vec<u8> {
        assert_eq!(input.len() as u64, self.keys * 4, "input size mismatch");
        let keys: Vec<u32> = input
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        let mut hist = vec![0u64; self.parts as usize];
        for k in &keys {
            hist[partition_id(*k, self.parts) as usize] += 1;
        }
        let mut cursors = vec![0u64; self.parts as usize];
        let mut sum = 0;
        for (c, h) in cursors.iter_mut().zip(&hist) {
            *c = sum;
            sum += h;
        }
        let mut out = vec![0u32; keys.len()];
        for k in &keys {
            let p = partition_id(*k, self.parts) as usize;
            out[cursors[p] as usize] = *k;
            cursors[p] += 1;
        }
        out.iter().flat_map(|k| k.to_le_bytes()).collect()
    }

    fn lower(&self, config: &DrxConfig) -> Result<Lowered, OpError> {
        let n = self.keys;
        let parts = self.parts;
        let need = 2 * n * 4 + parts * 8 + 256;
        if need > config.scratchpad_bytes {
            return Err(OpError::Compile(
                dmx_drx::CompileError::WorkingSetTooLarge {
                    nest: 0,
                    need,
                    avail: config.scratchpad_bytes,
                },
            ));
        }
        // Scratchpad layout.
        let keys_at = 0u64;
        let out_at = n * 4;
        let hist_at = 2 * n * 4;
        let cur_at = hist_at + parts * 4;
        let in_addr = 0u64;
        let out_addr = align(n * 4) + ALIGN;
        let b = parts.trailing_zeros() as i64;

        let s = Instr::Scalar;
        let li = |rd: u8, imm: i64| s(ScalarInstr::LdImm { rd, imm });
        let alu = |op: ScalarOp, rd: u8, rs1: u8, rs2: u8| s(ScalarInstr::Alu { op, rd, rs1, rs2 });
        let addi = |rd: u8, rs: u8, imm: i64| s(ScalarInstr::AddImm { rd, rs, imm });
        let ld = |rd: u8, ra: u8, offset: i64| {
            s(ScalarInstr::Load {
                rd,
                ra,
                offset,
                dtype: Dtype::U32,
            })
        };
        let st = |rs: u8, ra: u8, offset: i64| {
            s(ScalarInstr::Store {
                rs,
                ra,
                offset,
                dtype: Dtype::U32,
            })
        };

        let mut p = Program::new();
        p.push(Instr::Sync(SyncKind::Start));
        p.push(Instr::Dma {
            dir: DmaDir::Load,
            dram: DramAddr::Imm(in_addr),
            spad: keys_at,
            bytes: n * 4,
        });
        p.push(Instr::Sync(SyncKind::WaitMemAll));
        // Zero hist + cursors with one vector fill (contiguous).
        p.push(Instr::LoopDims { dims: [1, 1, 1, 1] });
        p.push(Instr::SetBase {
            port: Port::Dst,
            addr: hist_at,
        });
        p.push(Instr::SetStride {
            port: Port::Dst,
            strides: [0; 4],
            lane_stride: 4,
        });
        p.push(Instr::Vec {
            op: VectorOp::Fill,
            dtype: Dtype::U32,
            vlen: (2 * parts) as u32,
            imm: 0.0,
        });
        p.push(Instr::Sync(SyncKind::WaitVec));
        // Constants: r2=n, r7=2 (word shift), r8=hash K, r9=mask,
        // r10=32-b, r12=parts.
        p.push(li(2, n as i64));
        p.push(li(7, 2));
        p.push(li(8, HASH_K as i64));
        p.push(li(9, 0xFFFF_FFFF));
        p.push(li(10, 32 - b));
        p.push(li(12, parts as i64));

        // Pass 1: histogram.
        p.push(li(1, 0));
        let body = [
            alu(ScalarOp::Shl, 5, 1, 7),
            ld(3, 5, keys_at as i64),
            alu(ScalarOp::Mul, 4, 3, 8),
            alu(ScalarOp::And, 4, 4, 9),
            alu(ScalarOp::Shr, 4, 4, 10),
            alu(ScalarOp::Shl, 5, 4, 7),
            ld(6, 5, hist_at as i64),
            addi(6, 6, 1),
            st(6, 5, hist_at as i64),
            addi(1, 1, 1),
            alu(ScalarOp::Slt, 6, 1, 2),
        ];
        let loop_len = body.len() as i32;
        p.extend(body);
        p.push(s(ScalarInstr::Bnez {
            rs: 6,
            offset: -loop_len,
        }));

        // Prefix sum into cursors: r11 = running sum.
        p.push(li(11, 0));
        p.push(li(1, 0));
        let body = [
            alu(ScalarOp::Shl, 5, 1, 7),
            st(11, 5, cur_at as i64),
            ld(6, 5, hist_at as i64),
            alu(ScalarOp::Add, 11, 11, 6),
            addi(1, 1, 1),
            alu(ScalarOp::Slt, 6, 1, 12),
        ];
        let loop_len = body.len() as i32;
        p.extend(body);
        p.push(s(ScalarInstr::Bnez {
            rs: 6,
            offset: -loop_len,
        }));

        // Pass 2: stable scatter.
        p.push(li(1, 0));
        let body = [
            alu(ScalarOp::Shl, 5, 1, 7),
            ld(3, 5, keys_at as i64),
            alu(ScalarOp::Mul, 4, 3, 8),
            alu(ScalarOp::And, 4, 4, 9),
            alu(ScalarOp::Shr, 4, 4, 10),
            alu(ScalarOp::Shl, 5, 4, 7),
            ld(6, 5, cur_at as i64),
            addi(13, 6, 1),
            st(13, 5, cur_at as i64),
            alu(ScalarOp::Shl, 5, 6, 7),
            st(3, 5, out_at as i64),
            addi(1, 1, 1),
            alu(ScalarOp::Slt, 6, 1, 2),
        ];
        let loop_len = body.len() as i32;
        p.extend(body);
        p.push(s(ScalarInstr::Bnez {
            rs: 6,
            offset: -loop_len,
        }));

        p.push(Instr::Dma {
            dir: DmaDir::Store,
            dram: DramAddr::Imm(out_addr),
            spad: out_at,
            bytes: n * 4,
        });
        p.push(Instr::Sync(SyncKind::End));
        p.push(Instr::Halt);

        Ok(Lowered {
            program: p,
            inputs: vec![(in_addr, n * 4)],
            outputs: vec![(out_addr, n * 4)],
            consts: vec![],
            dram_bytes: out_addr + n * 4 + ALIGN,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{assert_cpu_drx_equal, run_on_drx};

    fn table_bytes(rows: u64, cols: u64) -> Vec<u8> {
        (0..rows * cols)
            .flat_map(|i| ((i * 2_654_435_761 + 7) as u32).to_le_bytes())
            .collect()
    }

    #[test]
    fn pivot_cpu_drx_agree_single_block() {
        let op = DbPivot::new(16, 4);
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &table_bytes(16, 4));
    }

    #[test]
    fn pivot_cpu_drx_agree_multi_block() {
        let op = DbPivot::new(1024, 8);
        let cfg = DrxConfig::default().with_scratchpad(8 << 10); // forces several blocks
        assert_cpu_drx_equal(&op, &cfg, &table_bytes(1024, 8));
    }

    #[test]
    fn pivot_layout_is_column_major_swapped() {
        let op = DbPivot::new(2, 3);
        // rows: [1,2,3], [4,5,6]
        let input: Vec<u8> = (1u32..=6).flat_map(|v| v.to_le_bytes()).collect();
        let out = op.run_cpu(&input);
        let vals: Vec<u32> = out
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()).swap_bytes())
            .collect();
        assert_eq!(vals, vec![1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn pivot_uses_transpose_engine_cycles() {
        let op = DbPivot::new(256, 4);
        let (_, stats) = run_on_drx(&op, &DrxConfig::default(), &table_bytes(256, 4)).unwrap();
        assert!(stats.vec_instrs > 0);
        assert!(stats.dma_count > 4); // at least one load + per-column stores
    }

    #[test]
    fn partition_cpu_drx_agree() {
        let op = HashPartition::new(1000, 16);
        let input: Vec<u8> = (0..1000u32)
            .flat_map(|i| (i.wrapping_mul(2_246_822_519).rotate_left(7)).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &input);
    }

    #[test]
    fn partition_groups_keys() {
        let op = HashPartition::new(512, 8);
        let input: Vec<u8> = (0..512u32).flat_map(|i| (i * 7919).to_le_bytes()).collect();
        let out = op.run_cpu(&input);
        let keys: Vec<u32> = out
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        // Partition ids must be nondecreasing across the output.
        let pids: Vec<u64> = keys.iter().map(|k| partition_id(*k, 8)).collect();
        assert!(
            pids.windows(2).all(|w| w[0] <= w[1]),
            "not grouped: {pids:?}"
        );
        // And it is a permutation of the input.
        let mut orig: Vec<u32> = input
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut sorted = keys.clone();
        orig.sort_unstable();
        sorted.sort_unstable();
        assert_eq!(orig, sorted);
    }

    #[test]
    fn partition_matches_join_crate_hash() {
        // The DRX partitioner and the join kernel must agree on
        // partition placement for 16 partitions.
        for key in [0u32, 1, 42, 0xFFFF_FFFF, 123_456_789] {
            let a = partition_id(key, 16);
            let b = dmx_kernels::join::partition_of(key as u64, 4) as u64;
            // These use different hash widths, so only check both are
            // in range — the system uses `partition_id` consistently.
            assert!(a < 16);
            assert!(b < 16);
        }
    }

    #[test]
    fn partition_is_scalar_heavy() {
        let op = HashPartition::new(256, 16);
        let input: Vec<u8> = (0..256u32).flat_map(|i| i.to_le_bytes()).collect();
        let (_, stats) = run_on_drx(&op, &DrxConfig::default(), &input).unwrap();
        assert!(
            stats.scalar_instrs > 256 * 20,
            "expected scalar-mode execution, got {} scalar instrs",
            stats.scalar_instrs
        );
    }

    #[test]
    fn partition_too_large_for_spad_errors() {
        let op = HashPartition::new(100_000, 16);
        assert!(op.lower(&DrxConfig::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn partition_validates_parts() {
        HashPartition::new(100, 3);
    }
}

#[cfg(test)]
mod deinterleave_tests {
    use super::*;
    use crate::op::assert_cpu_drx_equal;

    fn planar_input(records: u64, fields: u64) -> Vec<u8> {
        (0..records * fields)
            .flat_map(|i| ((i as f32) * 0.5 - 100.0).to_le_bytes())
            .collect()
    }

    #[test]
    fn cpu_and_drx_agree() {
        let op = Deinterleave::new(256, 2);
        assert_cpu_drx_equal(&op, &DrxConfig::default(), &planar_input(256, 2));
    }

    #[test]
    fn cpu_and_drx_agree_many_fields_small_spad() {
        let op = Deinterleave::new(512, 6);
        let cfg = DrxConfig::default().with_scratchpad(8 << 10);
        assert_cpu_drx_equal(&op, &cfg, &planar_input(512, 6));
    }

    #[test]
    fn separates_interleaved_complex() {
        // (re, im) pairs -> re plane then im plane.
        let op = Deinterleave::new(4, 2);
        let mut input = Vec::new();
        for i in 0..4 {
            input.extend((i as f32).to_le_bytes()); // re
            input.extend((100.0 + i as f32).to_le_bytes()); // im
        }
        let out = op.run_cpu(&input);
        let vals: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![0.0, 1.0, 2.0, 3.0, 100.0, 101.0, 102.0, 103.0]);
    }

    #[test]
    fn is_inverse_of_interleave_roundtrip() {
        // Deinterleaving twice with swapped dimensions restores AoS.
        let fwd = Deinterleave::new(128, 4);
        let back = Deinterleave::new(4, 128);
        let input = planar_input(128, 4);
        let soa = fwd.run_cpu(&input);
        let aos = back.run_cpu(&soa);
        assert_eq!(aos, input);
    }

    #[test]
    #[should_panic(expected = "empty layout")]
    fn rejects_empty() {
        Deinterleave::new(0, 4);
    }
}
