//! Property-based tests: every restructuring op's DRX execution equals
//! its CPU reference on random shapes and random inputs. Runs on the
//! in-tree deterministic harness (`dmx_sim::check`).

use dmx_drx::DrxConfig;
use dmx_restructure::{
    assert_cpu_drx_equal, BandPower, Deinterleave, EndianSwap, HashPartition, PadFrame,
    QuantizeTensor, SpectrogramMel, TokenizeGather, VecSum, YuvToTensor,
};
use dmx_sim::{cases, run_cases};

// These cases run a full compile + DRX execution each, so the base
// count stays low (proptest used 24).
fn n_cases() -> usize {
    cases(if cfg!(feature = "heavy-tests") {
        96
    } else {
        24
    })
}

fn cfg() -> DrxConfig {
    DrxConfig::default()
}

#[test]
fn endian_swap_matches() {
    run_cases("restructure::endian_swap", n_cases(), |g| {
        let words = g.u64_in(1, 3000);
        let seed = g.u64_in(0, 256) as u8;
        let op = EndianSwap { words };
        let input: Vec<u8> = (0..words * 4)
            .map(|i| (i as u8).wrapping_add(seed))
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    });
}

#[test]
fn quantize_matches() {
    run_cases("restructure::quantize", n_cases(), |g| {
        let elems = g.u64_in(1, 2000);
        let scale = g.i64_in(-100, 100);
        let op = QuantizeTensor {
            elems,
            scale: scale as f64 * 0.37,
        };
        let input: Vec<u8> = (0..elems)
            .flat_map(|i| (((i * 37) % 997) as f32 - 500.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    });
}

#[test]
fn vec_sum_matches() {
    run_cases("restructure::vec_sum", n_cases(), |g| {
        let elems = g.u64_in(1, 4000);
        let op = VecSum { elems };
        let input: Vec<u8> = (0..2 * elems)
            .flat_map(|i| ((i as f32 * 0.7).cos() * 100.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    });
}

#[test]
fn hash_partition_matches() {
    run_cases("restructure::hash_partition", n_cases(), |g| {
        let keys = g.u64_in(1, 2048);
        let parts_log = g.u64_in(1, 6) as u32;
        let seed = g.u64_in(0, 1 << 32) as u32;
        let op = HashPartition::new(keys, 1 << parts_log);
        let mut state = seed | 1;
        let input: Vec<u8> = (0..keys)
            .flat_map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                state.to_le_bytes()
            })
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    });
}

#[test]
fn tokenize_matches() {
    run_cases("restructure::tokenize", n_cases(), |g| {
        let n_seqs = g.u64_in(1, 40);
        let seq_len = g.u64_in(3, 80);
        let seed = g.u64_in(0, 256) as u8;
        let op = TokenizeGather::new(n_seqs, seq_len);
        let input: Vec<u8> = (0..n_seqs * (seq_len - 2))
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    });
}

#[test]
fn band_power_matches() {
    run_cases("restructure::band_power", n_cases(), |g| {
        let frames = g.u64_in(1, 20);
        let bands = 1u64 << g.u64_in(1, 4);
        let k0 = g.u64_in(1, 8);
        let bins = bands * k0;
        let op = BandPower::new(frames, bins, bands, 0.125, -0.5);
        let input: Vec<u8> = (0..frames * bins * 2)
            .flat_map(|i| (((i % 53) as f32) * 0.25 - 6.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    });
}

#[test]
fn spectrogram_mel_matches() {
    run_cases("restructure::spectrogram_mel", n_cases(), |g| {
        let frames = g.u64_in(1, 10);
        let bins = (1u64 << g.u64_in(4, 6)) + 1;
        let op = SpectrogramMel {
            frames,
            bins,
            bands: 8,
            sample_rate: 8000.0,
        };
        let input: Vec<u8> = (0..frames * bins * 2)
            .flat_map(|i| (((i * 29) % 101) as f32 * 0.5 - 25.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    });
}

#[test]
fn deinterleave_matches() {
    run_cases("restructure::deinterleave", n_cases(), |g| {
        let records = g.u64_in(1, 600);
        let fields = g.u64_in(1, 8);
        let seed = g.u64_in(0, 256) as u8;
        let op = Deinterleave::new(records, fields);
        let input: Vec<u8> = (0..records * fields * 4)
            .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    });
}

#[test]
fn pad_frame_matches() {
    run_cases("restructure::pad_frame", n_cases(), |g| {
        let rows = g.u64_in(1, 40);
        let cols = g.u64_in(1, 40);
        let pad_r = g.u64_in(0, 10);
        let pad_c = g.u64_in(0, 10);
        let op = PadFrame::new(rows, cols, rows + pad_r, cols + pad_c);
        let input: Vec<u8> = (0..rows * cols)
            .flat_map(|i| ((i as f32) - 7.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    });
}

#[test]
fn yuv_to_tensor_matches() {
    run_cases("restructure::yuv_to_tensor", n_cases(), |g| {
        let (w, h) = (g.u64_in(2, 20) * 2, g.u64_in(2, 12) * 2);
        let seed = g.u64_in(0, 256) as u8;
        let op = YuvToTensor::new(w, h);
        let input: Vec<u8> = (0..w * h * 3 / 2)
            .map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed))
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    });
}
