//! Property-based tests: every restructuring op's DRX execution equals
//! its CPU reference on random shapes and random inputs.

use dmx_drx::DrxConfig;
use dmx_restructure::{
    assert_cpu_drx_equal, BandPower, Deinterleave, EndianSwap, HashPartition, PadFrame,
    QuantizeTensor, SpectrogramMel, TokenizeGather, VecSum, YuvToTensor,
};
use proptest::prelude::*;

fn cfg() -> DrxConfig {
    DrxConfig::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn endian_swap_matches(words in 1u64..3000, seed in any::<u8>()) {
        let op = EndianSwap { words };
        let input: Vec<u8> = (0..words * 4).map(|i| (i as u8).wrapping_add(seed)).collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    }

    #[test]
    fn quantize_matches(
        elems in 1u64..2000,
        scale in -100i32..100,
    ) {
        let op = QuantizeTensor {
            elems,
            scale: scale as f64 * 0.37,
        };
        let input: Vec<u8> = (0..elems)
            .flat_map(|i| (((i * 37) % 997) as f32 - 500.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    }

    #[test]
    fn vec_sum_matches(elems in 1u64..4000) {
        let op = VecSum { elems };
        let input: Vec<u8> = (0..2 * elems)
            .flat_map(|i| ((i as f32 * 0.7).cos() * 100.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    }

    #[test]
    fn hash_partition_matches(
        keys in 1u64..2048,
        parts_log in 1u32..6,
        seed in any::<u32>(),
    ) {
        let op = HashPartition::new(keys, 1 << parts_log);
        let mut state = seed | 1;
        let input: Vec<u8> = (0..keys)
            .flat_map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                state.to_le_bytes()
            })
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    }

    #[test]
    fn tokenize_matches(n_seqs in 1u64..40, seq_len in 3u64..80, seed in any::<u8>()) {
        let op = TokenizeGather::new(n_seqs, seq_len);
        let input: Vec<u8> = (0..n_seqs * (seq_len - 2))
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    }

    #[test]
    fn band_power_matches(
        frames in 1u64..20,
        bands_log in 1u32..4,
        k0 in 1u64..8,
    ) {
        let bands = 1u64 << bands_log;
        let bins = bands * k0;
        let op = BandPower::new(frames, bins, bands, 0.125, -0.5);
        let input: Vec<u8> = (0..frames * bins * 2)
            .flat_map(|i| (((i % 53) as f32) * 0.25 - 6.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    }

    #[test]
    fn spectrogram_mel_matches(frames in 1u64..10, bins_log in 4u32..6) {
        let bins = (1u64 << bins_log) + 1;
        let op = SpectrogramMel {
            frames,
            bins,
            bands: 8,
            sample_rate: 8000.0,
        };
        let input: Vec<u8> = (0..frames * bins * 2)
            .flat_map(|i| (((i * 29) % 101) as f32 * 0.5 - 25.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    }

    #[test]
    fn deinterleave_matches(records in 1u64..600, fields in 1u64..8, seed in any::<u8>()) {
        let op = Deinterleave::new(records, fields);
        let input: Vec<u8> = (0..records * fields * 4)
            .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    }

    #[test]
    fn pad_frame_matches(
        rows in 1u64..40,
        cols in 1u64..40,
        pad_r in 0u64..10,
        pad_c in 0u64..10,
    ) {
        let op = PadFrame::new(rows, cols, rows + pad_r, cols + pad_c);
        let input: Vec<u8> = (0..rows * cols)
            .flat_map(|i| ((i as f32) - 7.0).to_le_bytes())
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    }

    #[test]
    fn yuv_to_tensor_matches(w_half in 2u64..20, h_half in 2u64..12, seed in any::<u8>()) {
        let (w, h) = (w_half * 2, h_half * 2);
        let op = YuvToTensor::new(w, h);
        let input: Vec<u8> = (0..w * h * 3 / 2)
            .map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed))
            .collect();
        assert_cpu_drx_equal(&op, &cfg(), &input);
    }
}
