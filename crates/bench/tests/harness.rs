//! Smoke tests of the reproduction harness: every experiment id is
//! wired, and the cheap ones render non-empty reports.

use dmx_bench::{run_experiment, EXPERIMENTS};
use dmx_core::experiments::Suite;

#[test]
fn experiment_list_is_complete() {
    for id in [
        "tab1",
        "fig3",
        "fig5",
        "fig8",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "ablations",
        "faults",
        "overload",
        "summary",
    ] {
        assert!(EXPERIMENTS.contains(&id), "missing {id}");
    }
}

#[test]
fn cheap_experiments_render() {
    let suite = Suite::new();
    for id in ["tab1", "fig8", "fig17"] {
        let out = run_experiment(&suite, id);
        assert!(out.len() > 100, "{id} rendered almost nothing");
    }
}

#[test]
fn checked_runner_is_vacuously_ok_without_embedded_checks() {
    let suite = Suite::new();
    let out = dmx_bench::run_experiment_checked(&suite, "tab1", Some(1));
    assert!(out.ok, "tab1 has no embedded checks to fail");
    assert!(out.report.len() > 100);
}

#[test]
#[should_panic(expected = "unknown experiment")]
fn unknown_experiment_panics() {
    let suite = Suite::new();
    run_experiment(&suite, "fig99");
}
