//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p dmx-bench --release --bin repro -- all
//! cargo run -p dmx-bench --release --bin repro -- fig11 fig12
//! ```

use dmx_bench::{run_experiment, EXPERIMENTS};
use dmx_core::experiments::Suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment>... | all");
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !EXPERIMENTS.contains(id) {
            eprintln!(
                "unknown experiment `{id}`; expected one of: {}",
                EXPERIMENTS.join(" ")
            );
            std::process::exit(2);
        }
    }
    eprintln!("building benchmark suite (compiling + executing DRX kernels)...");
    let suite = Suite::new();
    for id in ids {
        println!("{}", "=".repeat(72));
        println!("{}", run_experiment(&suite, id));
    }
}
