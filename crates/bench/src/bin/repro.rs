//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p dmx-bench --release --bin repro -- all
//! cargo run -p dmx-bench --release --bin repro -- fig11 fig12
//! cargo run -p dmx-bench --release --bin repro -- --seed 7 overload
//! ```
//!
//! `--seed N` threads an explicit seed into the experiments that take
//! one (`faults`, `overload`). Exits nonzero if any experiment's
//! embedded determinism/robustness checks fail.

use dmx_bench::{run_experiment_checked, EXPERIMENTS};
use dmx_core::experiments::Suite;

fn usage() -> ! {
    eprintln!("usage: repro [--seed N] <experiment>... | all");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: Option<u64> = None;
    let mut ids: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--seed needs a value");
                    usage()
                });
                seed = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs an unsigned integer, got `{v}`");
                    usage()
                }));
            }
            other => ids.push(other),
        }
    }
    if ids.is_empty() {
        usage();
    }
    if ids.contains(&"all") {
        ids = EXPERIMENTS.to_vec();
    }
    for id in &ids {
        if !EXPERIMENTS.contains(id) {
            eprintln!(
                "unknown experiment `{id}`; expected one of: {}",
                EXPERIMENTS.join(" ")
            );
            std::process::exit(2);
        }
    }
    eprintln!("building benchmark suite (compiling + executing DRX kernels)...");
    let suite = Suite::new();
    let mut failed = Vec::new();
    for id in ids {
        println!("{}", "=".repeat(72));
        let out = run_experiment_checked(&suite, id, seed);
        println!("{}", out.report);
        if !out.ok {
            failed.push(id);
        }
    }
    if !failed.is_empty() {
        eprintln!("FAILED embedded checks: {}", failed.join(" "));
        std::process::exit(1);
    }
}
