//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p dmx-bench --release --bin repro -- all
//! cargo run -p dmx-bench --release --bin repro -- fig11 fig12
//! cargo run -p dmx-bench --release --bin repro -- --seed 7 overload
//! cargo run -p dmx-bench --release --bin repro -- --threads 4 all
//! cargo run -p dmx-bench --release --bin repro -- --partitions 4 fleet
//! cargo run -p dmx-bench --release --bin repro -- bench
//! ```
//!
//! `--seed N` threads an explicit seed into the experiments that take
//! one (`faults`, `overload`). `--threads N` fans independent
//! experiments across `N` worker threads; the output is byte-identical
//! to a serial run regardless of `N`. `--partitions N` shards each
//! partitioned simulation (the `fleet` and `failover` experiments)
//! across `N` OS threads synchronized at conservative window barriers;
//! output is byte-identical for any `N`. `--force-speedup-probe` makes
//! the `fleet` experiment run its wall-clock speedup probe even on
//! hosts with fewer than 4 cores (the probe then only requires
//! byte-identity, not a speedup). `bench` times every experiment
//! (serial and parallel), prints a wall-clock/events-per-second/RSS
//! table, and writes `BENCH_<date>.json`. `bench --check BASELINE.json`
//! additionally compares the hot-experiment events/sec geomean against
//! a committed baseline report and fails on a >15% regression. Exits
//! nonzero if any experiment's embedded determinism/robustness checks
//! fail, if the bench's parallel pass diverges from serial, or if the
//! regression gate trips.

use dmx_bench::{bench, run_experiment_checked, EXPERIMENTS};
use dmx_core::experiments::Suite;
use dmx_sim::par_map;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--seed N] [--threads N] [--partitions N] [--force-speedup-probe] \
         <experiment>... | all | bench [--check BASELINE.json] [experiment]..."
    );
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut do_bench = false;
    let mut check: Option<String> = None;
    let mut ids: Vec<&'static str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--seed needs a value");
                    usage()
                });
                seed = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs an unsigned integer, got `{v}`");
                    usage()
                }));
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--threads needs a value");
                    usage()
                });
                threads = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs an unsigned integer, got `{v}`");
                    usage()
                }));
            }
            "--partitions" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--partitions needs a value");
                    usage()
                });
                let n: usize = v.parse().unwrap_or_else(|_| {
                    eprintln!("--partitions needs an unsigned integer, got `{v}`");
                    usage()
                });
                dmx_sim::partition::set_partitions(n);
            }
            "--force-speedup-probe" => {
                dmx_core::experiments::fleet::set_force_speedup_probe(true);
            }
            "bench" => do_bench = true,
            "--check" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--check needs a baseline BENCH_*.json path");
                    usage()
                });
                check = Some(v.clone());
            }
            "all" => ids.extend(EXPERIMENTS),
            other => {
                // Canonicalize to the 'static id so the bench report can
                // borrow it.
                match EXPERIMENTS.iter().find(|e| **e == other) {
                    Some(id) => ids.push(id),
                    None => {
                        eprintln!(
                            "unknown experiment `{other}`; expected one of: {}",
                            EXPERIMENTS.join(" ")
                        );
                        std::process::exit(2);
                    }
                }
            }
        }
    }
    if do_bench && ids.is_empty() {
        ids.extend(EXPERIMENTS);
    }
    if ids.is_empty() {
        usage();
    }
    if check.is_some() && !do_bench {
        eprintln!("--check only applies to bench mode");
        usage();
    }
    // Read the baseline before running: the fresh report may be written
    // under the same BENCH_<date>.json name and would clobber it.
    let baseline = check.map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {p}: {e}");
            std::process::exit(2);
        })
    });

    eprintln!("building benchmark suite (compiling + executing DRX kernels)...");
    let suite = Suite::new();

    if do_bench {
        // Default to the machine's parallelism for the parallel pass.
        let threads =
            threads.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let b = bench::run(&suite, &ids, seed, threads);
        print!("{}", b.render());
        let path = b.json_filename();
        std::fs::write(&path, b.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
        if !b.ok() {
            eprintln!("FAILED: parallel output diverged from serial");
            std::process::exit(1);
        }
        if let Some(base) = baseline {
            match b.check(&base) {
                Ok(c) => {
                    print!("{}", c.render());
                    if !c.pass() {
                        eprintln!(
                            "FAILED: hot events/sec geomean regressed more than {:.0}%",
                            (1.0 - bench::CHECK_FLOOR) * 100.0
                        );
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("bench --check: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    dmx_sim::par::set_threads(threads.unwrap_or(1));
    // Independent experiments fan across the worker pool; results are
    // collected in input order, so stdout is identical for any -N.
    let outcomes = par_map(&ids, |_, id| run_experiment_checked(&suite, id, seed));
    let mut failed = Vec::new();
    for (id, out) in ids.iter().zip(&outcomes) {
        println!("{}", "=".repeat(72));
        println!("{}", out.report);
        if !out.ok {
            failed.push(*id);
        }
    }
    if !failed.is_empty() {
        eprintln!("FAILED embedded checks: {}", failed.join(" "));
        std::process::exit(1);
    }
}
