//! # dmx-bench — reproduction harness
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation (`cargo run -p dmx-bench --release --bin repro -- all`),
//! and the benches under `benches/` time the simulator and the DRX
//! toolchain themselves on the in-tree [`timing`] harness
//! (`cargo bench --workspace`).

#![warn(missing_docs)]

use dmx_core::experiments::{self, Suite};

pub mod bench;
pub mod timing;

/// All experiment identifiers `repro` accepts.
pub const EXPERIMENTS: [&str; 20] = [
    "tab1",
    "fig3",
    "fig5",
    "fig8",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "ablations",
    "faults",
    "overload",
    "integrity",
    "chaos",
    "failslow",
    "summary",
];

/// A rendered experiment report plus the verdict of its embedded
/// checks. Experiments without embedded checks are vacuously `ok`.
#[derive(Debug)]
pub struct Outcome {
    /// The rendered report.
    pub report: String,
    /// Whether every embedded acceptance check passed.
    pub ok: bool,
}

/// Runs one experiment by id and returns its rendered report.
///
/// # Panics
///
/// Panics on an unknown id; call with a member of [`EXPERIMENTS`].
pub fn run_experiment(suite: &Suite, id: &str) -> String {
    run_experiment_checked(suite, id, None).report
}

/// Runs one experiment by id, threading `seed` into the experiments
/// that take one (`faults`, `overload`, `integrity`, `chaos`,
/// `failslow`; others ignore it), and reports
/// whether the experiment's embedded determinism/robustness checks
/// passed.
///
/// # Panics
///
/// Panics on an unknown id; call with a member of [`EXPERIMENTS`].
pub fn run_experiment_checked(suite: &Suite, id: &str, seed: Option<u64>) -> Outcome {
    match id {
        "faults" => {
            let f = experiments::faults::run_with_seed(
                suite,
                seed.unwrap_or(experiments::faults::SEED),
            );
            Outcome {
                ok: f.ok(),
                report: f.render(),
            }
        }
        "overload" => {
            let o = experiments::overload::run_with_seed(
                suite,
                seed.unwrap_or(experiments::overload::SEED),
            );
            Outcome {
                ok: o.ok(),
                report: o.render(),
            }
        }
        "integrity" => {
            let i = experiments::integrity::run_with_seed(
                suite,
                seed.unwrap_or(experiments::integrity::SEED),
            );
            Outcome {
                ok: i.ok(),
                report: i.render(),
            }
        }
        "chaos" => {
            let c =
                experiments::chaos::run_with_seed(suite, seed.unwrap_or(experiments::chaos::SEED));
            Outcome {
                ok: c.ok(),
                report: c.render(),
            }
        }
        "failslow" => {
            let f = experiments::failslow::run_with_seed(
                suite,
                seed.unwrap_or(experiments::failslow::SEED),
            );
            Outcome {
                ok: f.ok(),
                report: f.render(),
            }
        }
        other => Outcome {
            report: run_unchecked(suite, other),
            ok: true,
        },
    }
}

fn run_unchecked(suite: &Suite, id: &str) -> String {
    match id {
        "tab1" => experiments::tab1::run(suite),
        "fig3" => experiments::fig3::run(suite).render(),
        "fig5" => experiments::fig5::run(suite).render(),
        "fig8" => experiments::fig8::run(),
        "fig11" => experiments::fig11::run(suite).render(),
        "fig12" => experiments::fig12::run(suite).render(),
        "fig13" => experiments::fig13::run(suite).render(),
        "fig14" => experiments::fig14::run(suite).render(),
        "fig15" => experiments::fig15::run(suite).render(),
        "fig16" => experiments::fig16::run().render(),
        "fig17" => experiments::fig17::run().render(),
        "fig18" => experiments::fig18::run(suite).render(),
        "fig19" => experiments::fig19::run(suite).render(),
        "summary" => experiments::summary::run(suite).render(),
        "ablations" => format!(
            "{}\n{}\n{}\n{}",
            experiments::ablations::irq(suite).render(),
            experiments::ablations::spad(suite).render(),
            experiments::ablations::queue().render(),
            experiments::ablations::partition().render()
        ),
        other => panic!("unknown experiment `{other}`; expected one of {EXPERIMENTS:?}"),
    }
}
