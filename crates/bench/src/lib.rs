//! # dmx-bench — reproduction harness
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation (`cargo run -p dmx-bench --release --bin repro -- all`),
//! and the benches under `benches/` time the simulator and the DRX
//! toolchain themselves on the in-tree [`timing`] harness
//! (`cargo bench --workspace`).

#![warn(missing_docs)]

use dmx_core::experiments::{self, Suite};

pub mod bench;
pub mod timing;

/// All experiment identifiers `repro` accepts.
pub const EXPERIMENTS: [&str; 22] = [
    "tab1",
    "fig3",
    "fig5",
    "fig8",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "ablations",
    "faults",
    "overload",
    "integrity",
    "chaos",
    "failslow",
    "fleet",
    "failover",
    "summary",
];

/// A rendered experiment report plus the verdict of its embedded
/// checks. Experiments without embedded checks are vacuously `ok`.
#[derive(Debug)]
pub struct Outcome {
    /// The rendered report.
    pub report: String,
    /// Whether every embedded acceptance check passed.
    pub ok: bool,
    /// Seconds spent rendering the report, separate from the run
    /// itself so `repro bench` can keep rendering out of the
    /// events/sec window. Zero for experiments whose run and render
    /// are fused (tab1, fig8).
    pub render_secs: f64,
}

/// Runs `render` under a timer and packages the result, so report
/// rendering is accounted separately from the simulation it reports on.
fn rendered(ok: bool, render: impl FnOnce() -> String) -> Outcome {
    let t0 = std::time::Instant::now();
    let report = render();
    Outcome {
        report,
        ok,
        render_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Runs one experiment by id and returns its rendered report.
///
/// # Panics
///
/// Panics on an unknown id; call with a member of [`EXPERIMENTS`].
pub fn run_experiment(suite: &Suite, id: &str) -> String {
    run_experiment_checked(suite, id, None).report
}

/// Runs one experiment by id, threading `seed` into the experiments
/// that take one (`faults`, `overload`, `integrity`, `chaos`,
/// `failslow`, `fleet`, `failover`; others ignore it), and reports
/// whether the experiment's embedded determinism/robustness checks
/// passed.
///
/// # Panics
///
/// Panics on an unknown id; call with a member of [`EXPERIMENTS`].
pub fn run_experiment_checked(suite: &Suite, id: &str, seed: Option<u64>) -> Outcome {
    match id {
        "faults" => {
            let f = experiments::faults::run_with_seed(
                suite,
                seed.unwrap_or(experiments::faults::SEED),
            );
            rendered(f.ok(), || f.render())
        }
        "overload" => {
            let o = experiments::overload::run_with_seed(
                suite,
                seed.unwrap_or(experiments::overload::SEED),
            );
            rendered(o.ok(), || o.render())
        }
        "integrity" => {
            let i = experiments::integrity::run_with_seed(
                suite,
                seed.unwrap_or(experiments::integrity::SEED),
            );
            rendered(i.ok(), || i.render())
        }
        "chaos" => {
            let c =
                experiments::chaos::run_with_seed(suite, seed.unwrap_or(experiments::chaos::SEED));
            rendered(c.ok(), || c.render())
        }
        "failslow" => {
            let f = experiments::failslow::run_with_seed(
                suite,
                seed.unwrap_or(experiments::failslow::SEED),
            );
            rendered(f.ok(), || f.render())
        }
        "fleet" => {
            let f =
                experiments::fleet::run_with_seed(suite, seed.unwrap_or(experiments::fleet::SEED));
            rendered(f.ok(), || f.render())
        }
        "failover" => {
            let f = experiments::failover::run_with_seed(
                suite,
                seed.unwrap_or(experiments::failover::SEED),
            );
            rendered(f.ok(), || f.render())
        }
        other => run_unchecked(suite, other),
    }
}

fn run_unchecked(suite: &Suite, id: &str) -> Outcome {
    match id {
        "tab1" => Outcome {
            report: experiments::tab1::run(suite),
            ok: true,
            render_secs: 0.0,
        },
        "fig3" => {
            let r = experiments::fig3::run(suite);
            rendered(true, || r.render())
        }
        "fig5" => {
            let r = experiments::fig5::run(suite);
            rendered(true, || r.render())
        }
        "fig8" => Outcome {
            report: experiments::fig8::run(),
            ok: true,
            render_secs: 0.0,
        },
        "fig11" => {
            let r = experiments::fig11::run(suite);
            rendered(true, || r.render())
        }
        "fig12" => {
            let r = experiments::fig12::run(suite);
            rendered(true, || r.render())
        }
        "fig13" => {
            let r = experiments::fig13::run(suite);
            rendered(true, || r.render())
        }
        "fig14" => {
            let r = experiments::fig14::run(suite);
            rendered(true, || r.render())
        }
        "fig15" => {
            let r = experiments::fig15::run(suite);
            rendered(true, || r.render())
        }
        "fig16" => {
            let r = experiments::fig16::run();
            rendered(true, || r.render())
        }
        "fig17" => {
            let r = experiments::fig17::run();
            rendered(true, || r.render())
        }
        "fig18" => {
            let r = experiments::fig18::run(suite);
            rendered(true, || r.render())
        }
        "fig19" => {
            let r = experiments::fig19::run(suite);
            rendered(true, || r.render())
        }
        "summary" => {
            let r = experiments::summary::run(suite);
            rendered(true, || r.render())
        }
        "ablations" => {
            let irq = experiments::ablations::irq(suite);
            let spad = experiments::ablations::spad(suite);
            let queue = experiments::ablations::queue();
            let partition = experiments::ablations::partition();
            rendered(true, || {
                format!(
                    "{}\n{}\n{}\n{}",
                    irq.render(),
                    spad.render(),
                    queue.render(),
                    partition.render()
                )
            })
        }
        other => panic!("unknown experiment `{other}`; expected one of {EXPERIMENTS:?}"),
    }
}
