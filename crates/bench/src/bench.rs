//! Wall-clock measurement harness behind `repro bench`.
//!
//! Times every requested experiment twice — once serial, once on the
//! parallel sweep runner — and reports wall-clock, simulated events per
//! second, and peak RSS, writing the numbers to `BENCH_<date>.json` so
//! regressions can be compared across commits. The parallel pass must
//! render byte-identically to the serial pass; `ok()` (and the repro
//! exit code) reflect that check.
//!
//! System construction (`setup_secs`, from the process-global counter
//! fed by `Sim` constructors) and report rendering (`render_secs`)
//! are reported separately and subtracted from the events/sec
//! denominator, so the score measures the event loop, not setup or
//! formatting. Experiments with no event loop at all
//! ([`NON_EVENT_EXPERIMENTS`]) carry an explanatory note in the JSON.

use crate::run_experiment_checked;
use dmx_core::experiments::Suite;
use dmx_sim::{events_delivered, geomean, par_map};
use std::time::Instant;

/// The event-loop-dominated experiments scored by the `--check`
/// regression gate. Setup-heavy runs (kernel characterization,
/// schedule-space search, report mosaics) are excluded: their wall
/// clock is dominated by one-time work, so their events/sec says
/// nothing about the engine hot path.
pub const HOT_EXPERIMENTS: [&str; 12] = [
    "fig3",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig19",
    "faults",
    "overload",
    "integrity",
    "chaos",
    "failslow",
    "failover",
];

/// Largest tolerated hot-geomean regression: the gate fails when
/// `current < CHECK_FLOOR * baseline` (more than 15% slower).
pub const CHECK_FLOOR: f64 = 0.85;

/// Experiments that run no event loop at all — functional or analytic
/// models (DRX compilation, CPU cache characterization, closed-form
/// collectives). Their `events`/`events_per_sec` are genuinely zero,
/// not a measurement bug; the JSON row carries this note and the
/// `--check` geomean never includes them (none are hot).
pub const NON_EVENT_EXPERIMENTS: [&str; 4] = ["tab1", "fig5", "fig8", "fig17"];

/// The JSON note attached to [`NON_EVENT_EXPERIMENTS`] rows.
pub const NON_EVENT_NOTE: &str = "functional/analytic model, no event loop; excluded from --check";

/// One experiment's serial measurement.
#[derive(Debug, Clone)]
pub struct ExperimentBench {
    /// Experiment id (a member of [`crate::EXPERIMENTS`]).
    pub id: &'static str,
    /// Serial wall-clock seconds, all phases included.
    pub wall_secs: f64,
    /// Seconds of the wall spent constructing simulations
    /// (`Sim` setup, sampled from the process-global counter).
    pub setup_secs: f64,
    /// Seconds of the wall spent rendering the report.
    pub render_secs: f64,
    /// Simulated events delivered by the experiment's runs.
    pub events: u64,
    /// Events per second of *event-loop* wall clock — setup and render
    /// are subtracted from the denominator, so small experiments are
    /// no longer distorted by construction/formatting cost.
    pub events_per_sec: f64,
    /// Process peak RSS (VmHWM, kB) sampled after the experiment; the
    /// kernel reports a lifetime high-water mark, so this is monotone
    /// across rows. `None` off Linux.
    pub peak_rss_kb: Option<u64>,
}

/// Full `repro bench` results.
#[derive(Debug, Clone)]
pub struct Bench {
    /// ISO date (UTC) the bench ran, used in the JSON filename.
    pub date: String,
    /// Worker threads used for the parallel pass.
    pub threads: usize,
    /// Seed forwarded to the seeded experiments, if any.
    pub seed: Option<u64>,
    /// Per-experiment serial measurements, in run order.
    pub experiments: Vec<ExperimentBench>,
    /// Total serial wall-clock seconds.
    pub serial_wall_secs: f64,
    /// Total wall-clock seconds for the parallel pass over the same
    /// experiment list.
    pub parallel_wall_secs: f64,
    /// Serial over parallel wall-clock.
    pub speedup: f64,
    /// Whether the parallel pass rendered byte-identically to serial.
    pub parallel_output_identical: bool,
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`).
pub fn peak_rss_kb() -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock alone (the
/// container has no timezone database and the crate tree no chrono).
pub fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Gregorian date from days since 1970-01-01 (Hinnant's civil-from-days).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = yoe + era * 400 + i64::from(m <= 2);
    (y, m, d)
}

/// Runs the bench: a serial timed pass per experiment, then one
/// parallel pass over the whole list on `threads` workers, compared
/// byte-for-byte against the serial renders.
pub fn run(suite: &Suite, ids: &[&'static str], seed: Option<u64>, threads: usize) -> Bench {
    // Serial pass: per-experiment wall clock and event counts.
    let prev = dmx_sim::par::set_threads(1);
    let mut experiments = Vec::with_capacity(ids.len());
    let mut serial_reports = Vec::with_capacity(ids.len());
    let serial_start = Instant::now();
    for &id in ids {
        let ev0 = events_delivered();
        let su0 = dmx_sim::setup_nanos();
        let t0 = Instant::now();
        let out = run_experiment_checked(suite, id, seed);
        let wall_secs = t0.elapsed().as_secs_f64();
        let events = events_delivered() - ev0;
        let setup_secs = (dmx_sim::setup_nanos() - su0) as f64 / 1e9;
        // Score events/sec on the event-loop window alone: system
        // construction and report rendering are real cost (still in
        // wall_secs) but say nothing about the engine hot path.
        let loop_secs = (wall_secs - setup_secs - out.render_secs).max(1e-9);
        experiments.push(ExperimentBench {
            id,
            wall_secs,
            setup_secs,
            render_secs: out.render_secs,
            events,
            events_per_sec: events as f64 / loop_secs,
            peak_rss_kb: peak_rss_kb(),
        });
        serial_reports.push(out.report);
    }
    let serial_wall_secs = serial_start.elapsed().as_secs_f64();

    // Parallel pass: the whole experiment list fanned across workers,
    // collected in input order.
    dmx_sim::par::set_threads(threads);
    let par_start = Instant::now();
    let par_reports: Vec<String> =
        par_map(ids, |_, &id| run_experiment_checked(suite, id, seed).report);
    let parallel_wall_secs = par_start.elapsed().as_secs_f64();
    dmx_sim::par::set_threads(prev);

    Bench {
        date: utc_date(),
        threads,
        seed,
        experiments,
        serial_wall_secs,
        parallel_wall_secs,
        speedup: serial_wall_secs / parallel_wall_secs.max(1e-9),
        parallel_output_identical: serial_reports == par_reports,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Bench {
    /// True when the parallel pass reproduced the serial output.
    pub fn ok(&self) -> bool {
        self.parallel_output_identical
    }

    /// The filename the JSON report is written under.
    pub fn json_filename(&self) -> String {
        format!("BENCH_{}.json", self.date)
    }

    /// Serializes the report (hand-rolled; the tree carries no serde).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .experiments
            .iter()
            .map(|e| {
                let note = if NON_EVENT_EXPERIMENTS.contains(&e.id) {
                    format!(", \"note\": {}", json_str(NON_EVENT_NOTE))
                } else {
                    String::new()
                };
                format!(
                    "    {{\"id\": {id}, \"wall_secs\": {w:.6}, \"setup_secs\": {su:.6}, \
                     \"render_secs\": {re:.6}, \"events\": {ev}, \
                     \"events_per_sec\": {eps:.1}, \"peak_rss_kb\": {rss}{note}}}",
                    id = json_str(e.id),
                    w = e.wall_secs,
                    su = e.setup_secs,
                    re = e.render_secs,
                    ev = e.events,
                    eps = e.events_per_sec,
                    rss = e.peak_rss_kb.map_or("null".to_string(), |v| v.to_string()),
                )
            })
            .collect();
        format!(
            "{{\n  \"date\": {date},\n  \"threads\": {threads},\n  \"seed\": {seed},\n  \
             \"experiments\": [\n{rows}\n  ],\n  \
             \"serial_wall_secs\": {sw:.6},\n  \"parallel_wall_secs\": {pw:.6},\n  \
             \"speedup\": {sp:.3},\n  \"parallel_output_identical\": {ident}\n}}\n",
            date = json_str(&self.date),
            threads = self.threads,
            seed = self.seed.map_or("null".to_string(), |s| s.to_string()),
            rows = rows.join(",\n"),
            sw = self.serial_wall_secs,
            pw = self.parallel_wall_secs,
            sp = self.speedup,
            ident = self.parallel_output_identical,
        )
    }

    /// Renders the human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "repro bench — wall-clock harness ({} experiments, {} thread{})\n\n",
            self.experiments.len(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        ));
        out.push_str(&format!(
            "{:<12} {:>10} {:>10} {:>10} {:>12} {:>14} {:>12}\n",
            "experiment", "wall (s)", "setup (s)", "render (s)", "events", "events/sec", "rss (kB)"
        ));
        for e in &self.experiments {
            let eps = if NON_EVENT_EXPERIMENTS.contains(&e.id) {
                "n/a".to_string()
            } else {
                format!("{:.0}", e.events_per_sec)
            };
            out.push_str(&format!(
                "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>12} {:>14} {:>12}\n",
                e.id,
                e.wall_secs,
                e.setup_secs,
                e.render_secs,
                e.events,
                eps,
                e.peak_rss_kb.map_or("n/a".to_string(), |v| v.to_string()),
            ));
        }
        out.push_str(&format!(
            "\nserial total    {:.3} s\nparallel total  {:.3} s ({} threads)\n\
             speedup         {:.2}x\nparallel output identical to serial: {}\n",
            self.serial_wall_secs,
            self.parallel_wall_secs,
            self.threads,
            self.speedup,
            if self.parallel_output_identical {
                "yes"
            } else {
                "NO (BUG)"
            },
        ));
        out
    }
}

/// Extracts `(id, events_per_sec)` pairs from a bench JSON report.
///
/// The report is this module's own output ([`Bench::to_json`]): one
/// experiment row per line with `"id"` and `"events_per_sec"` on that
/// line, so a line scanner is an exact parser for it (the tree carries
/// no serde). Lines without both fields are skipped.
pub fn parse_eps(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let (Some(id), Some(eps)) = (
            field_str(line, "\"id\": \""),
            field_num(line, "\"events_per_sec\": "),
        ) else {
            continue;
        };
        out.push((id, eps));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Result of comparing a fresh bench against a committed baseline
/// report, scored on the [`HOT_EXPERIMENTS`] events/sec geomean.
#[derive(Debug, Clone)]
pub struct Check {
    /// Hot-experiment events/sec geomean from the baseline file.
    pub baseline: f64,
    /// Hot-experiment events/sec geomean from this run.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
}

impl Check {
    /// True when the run is within the tolerated regression envelope.
    pub fn pass(&self) -> bool {
        self.ratio >= CHECK_FLOOR
    }

    /// Renders the one-screen gate verdict.
    pub fn render(&self) -> String {
        format!(
            "\nbench --check — hot events/sec geomean vs baseline\n\
             baseline {:>12.0}\ncurrent  {:>12.0}\nratio    {:>12.3}  (floor {:.2}: {})\n",
            self.baseline,
            self.current,
            self.ratio,
            CHECK_FLOOR,
            if self.pass() { "pass" } else { "FAIL" },
        )
    }
}

impl Bench {
    /// Compares this run's hot-experiment events/sec geomean against a
    /// baseline JSON report (a previous run's `to_json`). `Err` if
    /// either side is missing a hot experiment or carries a
    /// non-positive events/sec for one.
    pub fn check(&self, baseline_json: &str) -> Result<Check, String> {
        let base = parse_eps(baseline_json);
        let mut b = Vec::with_capacity(HOT_EXPERIMENTS.len());
        let mut c = Vec::with_capacity(HOT_EXPERIMENTS.len());
        for id in HOT_EXPERIMENTS {
            let Some((_, eps)) = base.iter().find(|(i, _)| i == id) else {
                return Err(format!("baseline is missing hot experiment `{id}`"));
            };
            b.push(*eps);
            let Some(e) = self.experiments.iter().find(|e| e.id == id) else {
                return Err(format!("this run did not measure hot experiment `{id}`"));
            };
            c.push(e.events_per_sec);
        }
        let baseline = geomean(&b)
            .ok_or_else(|| "baseline has a non-positive events/sec in a hot row".to_string())?;
        let current = geomean(&c)
            .ok_or_else(|| "this run has a non-positive events/sec in a hot row".to_string())?;
        Ok(Check {
            baseline,
            current,
            ratio: current / baseline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(20_675), (2026, 8, 10));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn rss_is_reported_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb().expect("VmHWM") > 0);
        }
    }

    /// A synthetic Bench whose hot experiments all report `eps`.
    fn synthetic(eps: f64) -> Bench {
        Bench {
            date: "2026-01-01".to_string(),
            threads: 1,
            seed: None,
            experiments: HOT_EXPERIMENTS
                .iter()
                .map(|&id| ExperimentBench {
                    id,
                    wall_secs: 0.01,
                    setup_secs: 0.0,
                    render_secs: 0.0,
                    events: (eps / 100.0) as u64,
                    events_per_sec: eps,
                    peak_rss_kb: None,
                })
                .collect(),
            serial_wall_secs: 0.1,
            parallel_wall_secs: 0.1,
            speedup: 1.0,
            parallel_output_identical: true,
        }
    }

    #[test]
    fn parse_eps_round_trips_to_json() {
        let b = synthetic(1.5e6);
        let rows = parse_eps(&b.to_json());
        assert_eq!(rows.len(), HOT_EXPERIMENTS.len());
        for ((id, eps), want) in rows.iter().zip(HOT_EXPERIMENTS) {
            assert_eq!(id, want);
            assert!((eps - 1.5e6).abs() < 1.0, "{id}: {eps}");
        }
    }

    #[test]
    fn check_passes_within_envelope_and_fails_beyond() {
        let base = synthetic(1.0e6).to_json();
        // 10% slower: inside the 15% envelope.
        let c = synthetic(0.9e6).check(&base).expect("check");
        assert!(c.pass(), "ratio {:.3}", c.ratio);
        assert!((c.ratio - 0.9).abs() < 1e-9);
        // 20% slower: regression.
        let c = synthetic(0.8e6).check(&base).expect("check");
        assert!(!c.pass(), "ratio {:.3}", c.ratio);
        assert!(c.render().contains("FAIL"));
        // Faster is always fine.
        assert!(synthetic(3.0e6).check(&base).expect("check").pass());
    }

    #[test]
    fn check_rejects_incomplete_baselines() {
        let b = synthetic(1.0e6);
        let base = b.to_json().replace("\"fig16\"", "\"fig99\"");
        let err = b.check(&base).expect_err("missing hot row");
        assert!(err.contains("fig16"), "{err}");
        let err = b.check("{}").expect_err("empty baseline");
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn bench_runs_and_serializes() {
        let suite = Suite::new();
        let b = run(&suite, &["fig8", "fig16"], None, 2);
        assert!(b.ok(), "parallel pass must reproduce serial output");
        assert_eq!(b.experiments.len(), 2);
        assert!(b.serial_wall_secs > 0.0);
        let j = b.to_json();
        assert!(j.contains("\"fig8\""));
        assert!(j.contains("\"setup_secs\""));
        assert!(j.contains("\"render_secs\""));
        assert!(j.contains("\"parallel_output_identical\": true"));
        // fig8 is functional-only: its zero events carry the explicit
        // exclusion note; fig16 runs the event loop and must not.
        let fig8_row = j.lines().find(|l| l.contains("\"fig8\"")).expect("row");
        assert!(fig8_row.contains(NON_EVENT_NOTE), "{fig8_row}");
        let fig16_row = j.lines().find(|l| l.contains("\"fig16\"")).expect("row");
        assert!(!fig16_row.contains("note"), "{fig16_row}");
        let fig16 = b
            .experiments
            .iter()
            .find(|e| e.id == "fig16")
            .expect("fig16");
        assert!(fig16.events > 0, "fig16 runs the event loop");
        assert!(b.json_filename().starts_with("BENCH_"));
        assert!(b.render().contains("speedup"));
    }
}
