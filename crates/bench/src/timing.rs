//! Minimal wall-clock micro-benchmark harness.
//!
//! Offline environments cannot pull `criterion`, so the benches under
//! `benches/` run on this: warm up, time batches until a fixed budget
//! elapses, report min/mean per iteration. Invoke with
//! `cargo bench --workspace`; `DMX_BENCH_SECS` adjusts the per-case
//! budget (default 0.5 s).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-case measurement budget.
fn budget() -> Duration {
    let secs = std::env::var("DMX_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.5);
    Duration::from_secs_f64(secs.clamp(0.01, 60.0))
}

/// Times `f` and prints one result line: minimum and mean time per
/// iteration over as many runs as fit the budget (at least 5).
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up run, also keeps the result alive so `f` can't be elided.
    black_box(f());
    let budget = budget();
    let started = Instant::now();
    let mut samples = Vec::new();
    while samples.len() < 5 || (started.elapsed() < budget && samples.len() < 10_000) {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed());
    }
    let min = samples.iter().min().expect("nonempty");
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{name:<40} min {:>12}  mean {:>12}  ({} iters)",
        fmt(*min),
        fmt(mean),
        samples.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert!(fmt(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt(Duration::from_micros(120)).ends_with("us"));
        assert!(fmt(Duration::from_millis(120)).ends_with("ms"));
        assert!(fmt(Duration::from_secs(12)).ends_with(" s"));
    }
}
