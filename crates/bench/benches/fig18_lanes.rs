//! Times DRX kernel execution across the Fig. 18 lane sweep (the lane
//! count changes compiled code and cycle counts).

use dmx_bench::timing::bench;
use dmx_drx::DrxConfig;
use dmx_restructure::{run_on_drx, SpectrogramMel};
use std::hint::black_box;

fn main() {
    let op = SpectrogramMel::sound_detection(64);
    let input: Vec<u8> = (0..(64 * 257 * 8) as usize)
        .map(|i| (i % 251) as u8)
        .collect();
    for lanes in [32u32, 64, 128, 256] {
        let cfg = DrxConfig::default().with_lanes(lanes);
        bench(&format!("fig18_lanes/mel_kernel/{lanes}"), || {
            run_on_drx(black_box(&op), &cfg, black_box(&input)).unwrap()
        });
    }
}
