//! Times DRX kernel execution across the Fig. 18 lane sweep (the lane
//! count changes compiled code and cycle counts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmx_drx::DrxConfig;
use dmx_restructure::{run_on_drx, SpectrogramMel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let op = SpectrogramMel::sound_detection(64);
    let input: Vec<u8> = (0..(64 * 257 * 8) as usize)
        .map(|i| (i % 251) as u8)
        .collect();
    let mut g = c.benchmark_group("fig18_lanes");
    g.sample_size(10);
    for lanes in [32u32, 64, 128, 256] {
        let cfg = DrxConfig::default().with_lanes(lanes);
        g.bench_with_input(BenchmarkId::new("mel_kernel", lanes), &cfg, |b, cfg| {
            b.iter(|| run_on_drx(black_box(&op), cfg, black_box(&input)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
