//! Microbenchmarks of the DRX toolchain: compiling a kernel, executing
//! it functionally, and parsing assembly.

use dmx_bench::timing::bench;
use dmx_drx::ir::{Access, Kernel, VecStmt};
use dmx_drx::isa::{Dtype, VectorOp};
use dmx_drx::{asm, compile, DrxConfig, Machine};
use std::hint::black_box;

fn scale_kernel(n: u64) -> (Kernel, dmx_drx::ir::BufId) {
    let mut k = Kernel::new("scale");
    let a = k.buffer("a", Dtype::F32, n);
    let b = k.buffer("b", Dtype::F32, n);
    k.nest(
        vec![n],
        vec![VecStmt {
            op: VectorOp::MulS,
            dst: Access::row_major(b, &[n]),
            src0: Access::row_major(a, &[n]),
            src1: None,
            imm: 2.0,
        }],
    );
    (k, a)
}

fn main() {
    let cfg = DrxConfig::default();
    {
        let (k, _) = scale_kernel(65_536);
        bench("drx_compile_scale_64k", || {
            compile(black_box(&k), &cfg).unwrap()
        });
    }
    {
        let (k, a) = scale_kernel(65_536);
        let compiled = compile(&k, &cfg).unwrap();
        let input: Vec<u8> = vec![0x3f; 65_536 * 4];
        bench("drx_execute_scale_64k", || {
            let mut m = Machine::new(cfg);
            m.write_dram(compiled.layout.addr(a), &input);
            m.run(black_box(&compiled.program)).unwrap()
        });
    }
    {
        let (k, _) = scale_kernel(65_536);
        let text = compile(&k, &cfg).unwrap().program.disassemble();
        bench("drx_asm_roundtrip", || {
            asm::parse(black_box(&text)).unwrap()
        });
    }
}
