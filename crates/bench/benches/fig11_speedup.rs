//! Times the Fig. 11 end-to-end latency simulations (Multi-Axl vs DMX
//! bump-in-the-wire) at each concurrency level, and reports the
//! resulting speedups via `repro fig11`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmx_core::experiments::Suite;
use dmx_core::placement::{Mode, Placement};
use dmx_core::system::{simulate, SystemConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = Suite::new();
    let mut g = c.benchmark_group("fig11_speedup");
    g.sample_size(10);
    for n in [1usize, 5, 15] {
        g.bench_with_input(BenchmarkId::new("multi_axl", n), &n, |b, &n| {
            b.iter(|| simulate(black_box(&SystemConfig::latency(Mode::MultiAxl, suite.mix(n)))))
        });
        g.bench_with_input(BenchmarkId::new("dmx_bitw", n), &n, |b, &n| {
            b.iter(|| {
                simulate(black_box(&SystemConfig::latency(
                    Mode::Dmx(Placement::BumpInTheWire),
                    suite.mix(n),
                )))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
