//! Times the Fig. 11 end-to-end latency simulations (Multi-Axl vs DMX
//! bump-in-the-wire) at each concurrency level; `repro fig11` reports
//! the resulting speedups.

use dmx_bench::timing::bench;
use dmx_core::experiments::Suite;
use dmx_core::placement::{Mode, Placement};
use dmx_core::system::{simulate, SystemConfig};
use std::hint::black_box;

fn main() {
    let suite = Suite::new();
    for n in [1usize, 5, 15] {
        bench(&format!("fig11_speedup/multi_axl/{n}"), || {
            simulate(black_box(&SystemConfig::latency(
                Mode::MultiAxl,
                suite.mix(n),
            )))
        });
        bench(&format!("fig11_speedup/dmx_bitw/{n}"), || {
            simulate(black_box(&SystemConfig::latency(
                Mode::Dmx(Placement::BumpInTheWire),
                suite.mix(n),
            )))
        });
    }
}
