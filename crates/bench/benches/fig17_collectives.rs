//! Times the Fig. 17 collective-movement models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmx_core::collectives::{all_reduce, broadcast, CollectiveConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_collectives");
    g.sample_size(10);
    for n in [4usize, 32] {
        g.bench_with_input(BenchmarkId::new("broadcast", n), &n, |b, &n| {
            b.iter(|| broadcast(black_box(&CollectiveConfig::fig17(n))))
        });
        g.bench_with_input(BenchmarkId::new("all_reduce", n), &n, |b, &n| {
            b.iter(|| all_reduce(black_box(&CollectiveConfig::fig17(n))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
