//! Times the Fig. 17 collective-movement models.

use dmx_bench::timing::bench;
use dmx_core::collectives::{all_reduce, broadcast, CollectiveConfig};
use std::hint::black_box;

fn main() {
    for n in [4usize, 32] {
        bench(&format!("fig17_collectives/broadcast/{n}"), || {
            broadcast(black_box(&CollectiveConfig::fig17(n)))
        });
        bench(&format!("fig17_collectives/all_reduce/{n}"), || {
            all_reduce(black_box(&CollectiveConfig::fig17(n)))
        });
    }
}
