//! Microbenchmarks of the restructuring ops' CPU reference
//! implementations (the computations the Multi-Axl baseline performs).

use criterion::{criterion_group, criterion_main, Criterion};
use dmx_restructure::{DbPivot, RestructureOp, SpectrogramMel, TokenizeGather, YuvToTensor};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mel = SpectrogramMel::sound_detection(64);
    let mel_in: Vec<u8> = (0..(64 * 257 * 8) as usize).map(|i| (i % 251) as u8).collect();
    c.bench_function("cpu_spectrogram_mel_64f", |b| {
        b.iter(|| mel.run_cpu(black_box(&mel_in)))
    });

    let yuv = YuvToTensor::new(160, 96);
    let yuv_in: Vec<u8> = (0..(160 * 96 * 3 / 2) as usize).map(|i| (i % 256) as u8).collect();
    c.bench_function("cpu_yuv_to_tensor_160x96", |b| {
        b.iter(|| yuv.run_cpu(black_box(&yuv_in)))
    });

    let pivot = DbPivot::new(4096, 8);
    let pivot_in: Vec<u8> = (0..4096 * 8 * 4).map(|i| (i % 256) as u8).collect();
    c.bench_function("cpu_db_pivot_4096x8", |b| {
        b.iter(|| pivot.run_cpu(black_box(&pivot_in)))
    });

    let tok = TokenizeGather::new(128, 128);
    let tok_in: Vec<u8> = (0..128 * 126).map(|i| (i % 256) as u8).collect();
    c.bench_function("cpu_tokenize_128x128", |b| {
        b.iter(|| tok.run_cpu(black_box(&tok_in)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
