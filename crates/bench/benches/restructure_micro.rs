//! Microbenchmarks of the restructuring ops' CPU reference
//! implementations (the computations the Multi-Axl baseline performs).

use dmx_bench::timing::bench;
use dmx_restructure::{DbPivot, RestructureOp, SpectrogramMel, TokenizeGather, YuvToTensor};
use std::hint::black_box;

fn main() {
    let mel = SpectrogramMel::sound_detection(64);
    let mel_in: Vec<u8> = (0..(64 * 257 * 8) as usize)
        .map(|i| (i % 251) as u8)
        .collect();
    bench("cpu_spectrogram_mel_64f", || {
        mel.run_cpu(black_box(&mel_in))
    });

    let yuv = YuvToTensor::new(160, 96);
    let yuv_in: Vec<u8> = (0..(160 * 96 * 3 / 2) as usize)
        .map(|i| (i % 256) as u8)
        .collect();
    bench("cpu_yuv_to_tensor_160x96", || {
        yuv.run_cpu(black_box(&yuv_in))
    });

    let pivot = DbPivot::new(4096, 8);
    let pivot_in: Vec<u8> = (0..4096 * 8 * 4).map(|i| (i % 256) as u8).collect();
    bench("cpu_db_pivot_4096x8", || {
        pivot.run_cpu(black_box(&pivot_in))
    });

    let tok = TokenizeGather::new(128, 128);
    let tok_in: Vec<u8> = (0..128 * 126).map(|i| (i % 256) as u8).collect();
    bench("cpu_tokenize_128x128", || tok.run_cpu(black_box(&tok_in)));
}
