//! Microbenchmarks of the simulation-engine hot paths: event-queue
//! churn, the max-min flow solver under arrival/departure sequences,
//! route resolution, and percentile snapshots. These isolate the paths
//! the `repro bench` end-to-end numbers blend with kernel execution.

use dmx_bench::timing::bench;
use dmx_pcie::{FlowNet, Gen, Lanes, LinkId, LinkSpec, NodeKind, Topology};
use dmx_sim::partition::{run_conservative, Outbox, Partition, XMsg};
use dmx_sim::{EventQueue, Percentiles, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// Token-ring partition for the barrier rows: each received token is
/// folded into a checksum and forwarded one hop with `LINK_NS` link
/// latency, so with lookahead == link latency every conservative
/// window carries exactly one hop of real work.
const LINK_NS: u64 = 10;

struct BenchRing {
    id: usize,
    n: usize,
    q: EventQueue<u64>,
    sum: u64,
    bound: u64,
}

impl BenchRing {
    fn new(id: usize, n: usize, bound: u64) -> BenchRing {
        let mut q = EventQueue::new();
        if id == 0 {
            q.schedule_at(Time::from_ns(1), 0);
        }
        BenchRing {
            id,
            n,
            q,
            sum: 0,
            bound,
        }
    }
}

impl Partition for BenchRing {
    type Msg = u64;

    fn next_time(&self) -> Option<Time> {
        self.q.peek_time()
    }

    fn advance(&mut self, horizon: Time, inbox: Vec<XMsg<u64>>, out: &mut Outbox<u64>) {
        for m in inbox {
            self.q.schedule_at(m.time, m.payload);
        }
        while self.q.peek_time().is_some_and(|t| t < horizon) {
            let v = self.q.pop().expect("peeked");
            self.sum = self.sum.wrapping_add(v);
            if v < self.bound {
                out.send(
                    (self.id + 1) % self.n,
                    self.q.now() + Time::from_ns(LINK_NS),
                    v + 1,
                );
            }
        }
    }
}

fn main() {
    // Steady-state event churn: one slab slot recycled 100k times plus
    // a 64-deep pending window, payload large enough to notice copies.
    bench("queue_churn_100k", || {
        let mut q: EventQueue<[u64; 4]> = EventQueue::new();
        for i in 0..64u64 {
            q.schedule_at(Time::from_ns(i), [i; 4]);
        }
        let mut acc = 0u64;
        for i in 64..100_000u64 {
            let e = q.pop().expect("pending");
            acc = acc.wrapping_add(e[0]);
            q.schedule_at(Time::from_ns(i), [i; 4]);
        }
        while let Some(e) = q.pop() {
            acc = acc.wrapping_add(e[0]);
        }
        acc
    });

    // Heap-vs-calendar crossover, classic hold model: fill `n` pending
    // events over a ~1 ms span, then 100k hold steps (pop the earliest,
    // schedule a replacement a pseudo-random delay after it). The
    // binary heap pays O(log n) per step while the calendar's bucket
    // walk stays O(1) amortized *after its first rebase sizes the
    // buckets to the population*; these rows record where the
    // crossover lands on this machine. Each row times fill + holds
    // together, so the 1m row is fill-dominated (1M inserts, 100k
    // holds) — bulk fill is the heap's best case (contiguous sift)
    // and the calendar's worst (rebase plus scattered bucket writes).
    // The fill span must also dwarf the calendar's cold-start 16 us
    // window: a fill packed inside it piles every event into one
    // sorted bucket (quadratic inserts) without ever reaching the
    // rebase that would adapt the layout — a degenerate corner, not
    // the steady state the engine runs in. Both sides consume the
    // identical LCG schedule.
    const HOLDS: u64 = 100_000;
    for (label, n) in [("1k", 1_000u64), ("100k", 100_000), ("1m", 1_000_000)] {
        bench(&format!("hold_calendar_{label}"), || {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut x = 0x9E37_79B9u64;
            for i in 0..n {
                x = lcg(x);
                q.schedule_at(Time::from_ps(x >> 34), i);
            }
            let mut acc = 0u64;
            for _ in 0..HOLDS {
                let e = q.pop().expect("pending");
                acc = acc.wrapping_add(e);
                x = lcg(x);
                q.schedule_at(q.now() + Time::from_ps((x >> 34) | 1), e);
            }
            acc
        });
        bench(&format!("hold_heap_{label}"), || {
            // (time_ps, seq, payload); seq keeps FIFO order at equal
            // timestamps, matching the EventQueue delivery contract.
            let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
            let mut x = 0x9E37_79B9u64;
            let mut seq = 0u64;
            for i in 0..n {
                x = lcg(x);
                heap.push(Reverse((x >> 34, seq, i)));
                seq += 1;
            }
            let mut acc = 0u64;
            for _ in 0..HOLDS {
                let Reverse((t, _, e)) = heap.pop().expect("pending");
                acc = acc.wrapping_add(e);
                x = lcg(x);
                heap.push(Reverse((t + ((x >> 34) | 1), seq, e)));
                seq += 1;
            }
            acc
        });
    }

    // Max-min re-solves under churn: 24 flows over 8 links, then 200
    // staggered arrivals/retirements, querying rates() after each
    // mutation (the per-transfer pattern of the system model).
    bench("flow_solver_churn", || {
        let mut net = FlowNet::new(vec![4_000_000_000; 8]);
        let mut id = 0u64;
        let mut now = Time::ZERO;
        for _ in 0..24 {
            let links = [
                LinkId::from_index((id % 8) as usize),
                LinkId::from_index(((id / 3) % 8) as usize),
            ];
            net.insert(now, id, 40_000_000 + id * 1_000_000, &links);
            id += 1;
        }
        let mut acc = 0.0f64;
        for _ in 0..200 {
            acc += net.rates().iter().sum::<f64>();
            if let Some(t) = net.next_event(now) {
                now = t;
                net.advance(now);
                net.take_finished();
            }
            let links = [LinkId::from_index((id % 8) as usize)];
            net.insert(now, id, 40_000_000, &links);
            id += 1;
        }
        acc
    });

    // Route resolution over a two-level tree, every (endpoint, peer)
    // pair queried 50 times — the memo's hit pattern in a run.
    let mut topo = Topology::new();
    let up = LinkSpec::new(Gen::Gen4, Lanes::X8);
    let down = LinkSpec::new(Gen::Gen4, Lanes::X16);
    let mut leaves = Vec::new();
    for s in 0..4 {
        let sw = topo.add_node(NodeKind::Switch, format!("sw{s}"), topo.root(), up);
        for d in 0..4 {
            leaves.push(topo.add_node(NodeKind::Device, format!("dev{s}.{d}"), sw, down));
        }
    }
    bench("route_16dev_all_pairs_x50", || {
        let mut hops = 0usize;
        for _ in 0..50 {
            for &a in &leaves {
                for &b in &leaves {
                    if a != b {
                        hops += topo.route(a, b).links.len();
                    }
                }
            }
        }
        black_box(hops)
    });

    // Conservative-window barrier overhead: an n-partition token ring
    // where each window moves exactly one token one hop, so the work
    // per window is negligible and the row times the synchronization
    // machinery itself — global-min reduction, horizon publication,
    // channel collection, inbox sorting, and (sharded rows) two
    // `std::sync::Barrier` waits per window. `serial` runs the same
    // window loop inline on one thread; the sharded row pays the real
    // cross-thread barrier cost, so serial-vs-sharded is the per-window
    // price of parallelism and `2p`→`8p` scales the reduction width.
    const TOKENS: u64 = 5_000;
    for n in [2usize, 4, 8] {
        for (mode, shards) in [("serial", 1usize), ("sharded", n)] {
            bench(&format!("barrier_ring{n}p_{mode}"), || {
                let mut parts: Vec<BenchRing> =
                    (0..n).map(|id| BenchRing::new(id, n, TOKENS)).collect();
                let stats = run_conservative(&mut parts, Time::from_ns(LINK_NS), shards);
                let sum: u64 = parts.iter().map(|p| p.sum).sum();
                black_box((stats.windows, stats.messages, sum))
            });
        }
    }

    // Quantile snapshot: 10k samples, the three tail queries per
    // snapshot the overload report makes.
    bench("percentiles_10k_snapshot", || {
        let mut p = Percentiles::new();
        let mut x = 0x9E37_79B9u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            p.record((x >> 11) as f64);
        }
        (p.p50(), p.p99(), p.p999())
    });
}
