//! Times the Fig. 13 throughput-mode simulations.

use dmx_bench::timing::bench;
use dmx_core::experiments::Suite;
use dmx_core::placement::{Mode, Placement};
use dmx_core::system::{simulate, SystemConfig};
use std::hint::black_box;

fn main() {
    let suite = Suite::new();
    for n in [5usize, 15] {
        bench(&format!("fig13_throughput/multi_axl/{n}"), || {
            simulate(black_box(&SystemConfig::throughput(
                Mode::MultiAxl,
                suite.mix(n),
            )))
        });
        bench(&format!("fig13_throughput/dmx_bitw/{n}"), || {
            simulate(black_box(&SystemConfig::throughput(
                Mode::Dmx(Placement::BumpInTheWire),
                suite.mix(n),
            )))
        });
    }
}
