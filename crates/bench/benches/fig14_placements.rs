//! Times the Fig. 14 placement-comparison simulations.

use dmx_bench::timing::bench;
use dmx_core::experiments::Suite;
use dmx_core::placement::{Mode, Placement};
use dmx_core::system::{simulate, SystemConfig};
use std::hint::black_box;

fn main() {
    let suite = Suite::new();
    for p in Placement::ALL {
        bench(&format!("fig14_placements/{}/10", p.name()), || {
            simulate(black_box(&SystemConfig::latency(
                Mode::Dmx(p),
                suite.mix(10),
            )))
        });
    }
}
