//! Times the Fig. 14 placement-comparison simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmx_core::experiments::Suite;
use dmx_core::placement::{Mode, Placement};
use dmx_core::system::{simulate, SystemConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = Suite::new();
    let mut g = c.benchmark_group("fig14_placements");
    g.sample_size(10);
    for p in Placement::ALL {
        g.bench_with_input(BenchmarkId::new(p.name(), 10), &p, |b, &p| {
            b.iter(|| {
                simulate(black_box(&SystemConfig::latency(
                    Mode::Dmx(p),
                    suite.mix(10),
                )))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
