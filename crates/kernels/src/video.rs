//! Toy video codec: the Video Surveillance pipeline's first kernel.
//!
//! The paper uses the VT1 instance's hard-IP H.264 decoder; the system
//! evaluation only needs a decoder that (a) produces real YUV frames to
//! feed the restructuring step and (b) has a latency model elsewhere.
//! This codec is intra+delta with run-length coding: frame 0 is coded
//! standalone, later frames as deltas against their predecessor —
//! enough temporal structure for realistic compression ratios on the
//! synthetic surveillance scenes the example generates.

use std::fmt;

/// A YUV 4:2:0 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Luma plane, `width x height`.
    pub y: Vec<u8>,
    /// Chroma U plane, `(width/2) x (height/2)`.
    pub u: Vec<u8>,
    /// Chroma V plane, `(width/2) x (height/2)`.
    pub v: Vec<u8>,
    /// Width in pixels (must be even).
    pub width: usize,
    /// Height in pixels (must be even).
    pub height: usize,
}

impl Frame {
    /// Creates a black frame.
    ///
    /// # Panics
    ///
    /// Panics if width or height is zero or odd.
    pub fn black(width: usize, height: usize) -> Frame {
        assert!(width > 0 && height > 0, "empty frame");
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "dimensions must be even"
        );
        Frame {
            y: vec![16; width * height],
            u: vec![128; width * height / 4],
            v: vec![128; width * height / 4],
            width,
            height,
        }
    }

    /// Total bytes across the three planes.
    pub fn bytes(&self) -> usize {
        self.y.len() + self.u.len() + self.v.len()
    }
}

/// Run-length encodes a byte plane: `(count, value)` pairs.
fn rle_encode(data: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < data.len() {
        let v = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == v && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(v);
        i += run;
    }
}

fn rle_decode(input: &[u8], pos: &mut usize, len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        if *pos + 2 > input.len() {
            return Err(CodecError::Truncated);
        }
        let run = input[*pos] as usize;
        let v = input[*pos + 1];
        if run == 0 {
            return Err(CodecError::BadRun);
        }
        *pos += 2;
        for _ in 0..run {
            out.push(v);
        }
    }
    if out.len() != len {
        return Err(CodecError::BadRun);
    }
    Ok(out)
}

/// Codec errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Bitstream ended early.
    Truncated,
    /// Invalid run length.
    BadRun,
    /// Header malformed.
    BadHeader,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "bitstream truncated"),
            CodecError::BadRun => write!(f, "invalid run length"),
            CodecError::BadHeader => write!(f, "malformed stream header"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes a group of frames. The first frame is intra-coded; the rest
/// are wrapping deltas against the previous frame, then RLE'd.
///
/// # Panics
///
/// Panics if frames are empty or have mismatched dimensions.
pub fn encode(frames: &[Frame]) -> Vec<u8> {
    assert!(!frames.is_empty(), "no frames");
    let (w, h) = (frames[0].width, frames[0].height);
    assert!(
        frames.iter().all(|f| f.width == w && f.height == h),
        "mixed frame sizes"
    );
    let mut out = Vec::new();
    out.extend_from_slice(&(w as u32).to_le_bytes());
    out.extend_from_slice(&(h as u32).to_le_bytes());
    out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
    let mut prev: Option<&Frame> = None;
    for frame in frames {
        for (plane, prev_plane) in [
            (&frame.y, prev.map(|p| &p.y)),
            (&frame.u, prev.map(|p| &p.u)),
            (&frame.v, prev.map(|p| &p.v)),
        ] {
            match prev_plane {
                None => rle_encode(plane, &mut out),
                Some(pp) => {
                    let delta: Vec<u8> = plane
                        .iter()
                        .zip(pp.iter())
                        .map(|(a, b)| a.wrapping_sub(*b))
                        .collect();
                    rle_encode(&delta, &mut out);
                }
            }
        }
        prev = Some(frame);
    }
    out
}

/// Decodes a stream produced by [`encode`].
///
/// # Errors
///
/// Returns a [`CodecError`] for malformed streams.
pub fn decode(input: &[u8]) -> Result<Vec<Frame>, CodecError> {
    if input.len() < 12 {
        return Err(CodecError::BadHeader);
    }
    let w = u32::from_le_bytes(input[0..4].try_into().expect("sized")) as usize;
    let h = u32::from_le_bytes(input[4..8].try_into().expect("sized")) as usize;
    let n = u32::from_le_bytes(input[8..12].try_into().expect("sized")) as usize;
    if w == 0 || h == 0 || !w.is_multiple_of(2) || !h.is_multiple_of(2) || n == 0 {
        return Err(CodecError::BadHeader);
    }
    let mut pos = 12;
    let mut frames: Vec<Frame> = Vec::with_capacity(n);
    for fi in 0..n {
        let y = rle_decode(input, &mut pos, w * h)?;
        let u = rle_decode(input, &mut pos, w * h / 4)?;
        let v = rle_decode(input, &mut pos, w * h / 4)?;
        let frame = if fi == 0 {
            Frame {
                y,
                u,
                v,
                width: w,
                height: h,
            }
        } else {
            let p = &frames[fi - 1];
            Frame {
                y: y.iter()
                    .zip(&p.y)
                    .map(|(d, b)| b.wrapping_add(*d))
                    .collect(),
                u: u.iter()
                    .zip(&p.u)
                    .map(|(d, b)| b.wrapping_add(*d))
                    .collect(),
                v: v.iter()
                    .zip(&p.v)
                    .map(|(d, b)| b.wrapping_add(*d))
                    .collect(),
                width: w,
                height: h,
            }
        };
        frames.push(frame);
    }
    Ok(frames)
}

/// Renders a synthetic surveillance scene: a gray background with a
/// bright square "object" moving along a diagonal, one position per
/// frame. Deterministic; used by examples and workload generators.
pub fn synthetic_scene(width: usize, height: usize, frames: usize) -> Vec<Frame> {
    let mut out = Vec::with_capacity(frames);
    for t in 0..frames {
        let mut f = Frame::black(width, height);
        for p in f.y.iter_mut() {
            *p = 80;
        }
        let size = (width.min(height) / 8).max(2);
        let x0 = (t * 3) % (width - size);
        let y0 = (t * 2) % (height - size);
        for dy in 0..size {
            for dx in 0..size {
                f.y[(y0 + dy) * width + (x0 + dx)] = 235;
            }
        }
        // Tint the chroma where the object is.
        for dy in 0..size / 2 {
            for dx in 0..size / 2 {
                let c = (y0 / 2 + dy) * (width / 2) + (x0 / 2 + dx);
                f.u[c] = 90;
                f.v[c] = 200;
            }
        }
        out.push(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_static_frames() {
        let frames = vec![Frame::black(32, 24); 3];
        let enc = encode(&frames);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec, frames);
        // Static video compresses extremely well.
        let raw: usize = frames.iter().map(Frame::bytes).sum();
        assert!(enc.len() < raw / 10);
    }

    #[test]
    fn round_trip_moving_scene() {
        let frames = synthetic_scene(64, 48, 10);
        let enc = encode(&frames);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec, frames);
        let raw: usize = frames.iter().map(Frame::bytes).sum();
        assert!(enc.len() < raw, "deltas must compress motion");
    }

    #[test]
    fn object_moves_between_frames() {
        let frames = synthetic_scene(64, 48, 2);
        assert_ne!(frames[0].y, frames[1].y);
    }

    #[test]
    fn bad_streams_rejected() {
        assert_eq!(decode(&[]), Err(CodecError::BadHeader));
        let frames = vec![Frame::black(16, 16)];
        let mut enc = encode(&frames);
        enc.truncate(enc.len() - 1);
        assert_eq!(decode(&enc), Err(CodecError::Truncated));
        // zero run
        let mut bad = encode(&frames);
        bad[12] = 0;
        assert_eq!(decode(&bad), Err(CodecError::BadRun));
    }

    #[test]
    #[should_panic(expected = "dimensions must be even")]
    fn odd_dimensions_rejected() {
        Frame::black(15, 16);
    }

    #[test]
    fn plane_sizes_follow_420() {
        let f = Frame::black(32, 16);
        assert_eq!(f.y.len(), 512);
        assert_eq!(f.u.len(), 128);
        assert_eq!(f.v.len(), 128);
        assert_eq!(f.bytes(), 768);
    }
}
