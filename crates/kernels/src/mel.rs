//! Mel-scale filterbank: the data-restructuring math of the Sound
//! Detection pipeline ("applying mel scale transformation to the
//! spectrogram ... maps the spectrogram into mel-frequency bins which
//! are closer to the human-perceivable scale", Sec. II.A).

/// Converts a frequency in hertz to mels (HTK formula).
pub fn hz_to_mel(hz: f32) -> f32 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mels back to hertz.
pub fn mel_to_hz(mel: f32) -> f32 {
    700.0 * (10f32.powf(mel / 2595.0) - 1.0)
}

/// A dense triangular mel filterbank: `bands x bins`, row-major.
///
/// Each row is a triangular filter in FFT-bin space; applying the bank
/// to a power spectrum is a small matrix–vector product — exactly the
/// multiply-accumulate loop the DRX executes with a zero-stride
/// destination.
#[derive(Debug, Clone)]
pub struct MelFilterbank {
    weights: Vec<f32>,
    bands: usize,
    bins: usize,
}

impl MelFilterbank {
    /// Builds a filterbank with `bands` triangular filters over `bins`
    /// one-sided FFT bins for a signal sampled at `sample_rate` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `bands` or `bins` is zero, or `bands + 2 > bins`.
    pub fn new(bands: usize, bins: usize, sample_rate: f32) -> MelFilterbank {
        assert!(bands > 0 && bins > 0, "bands and bins must be nonzero");
        assert!(bands + 2 <= bins, "too many bands for this resolution");
        let nyquist = sample_rate / 2.0;
        let mel_max = hz_to_mel(nyquist);
        // bands + 2 evenly spaced mel points -> bin centers.
        let centers: Vec<f32> = (0..bands + 2)
            .map(|i| {
                let mel = mel_max * i as f32 / (bands + 1) as f32;
                mel_to_hz(mel) / nyquist * (bins - 1) as f32
            })
            .collect();
        let mut weights = vec![0.0f32; bands * bins];
        for b in 0..bands {
            let (lo, mid, hi) = (centers[b], centers[b + 1], centers[b + 2]);
            for k in 0..bins {
                let x = k as f32;
                let w = if x <= lo || x >= hi {
                    0.0
                } else if x <= mid {
                    (x - lo) / (mid - lo).max(1e-6)
                } else {
                    (hi - x) / (hi - mid).max(1e-6)
                };
                weights[b * bins + k] = w;
            }
        }
        MelFilterbank {
            weights,
            bands,
            bins,
        }
    }

    /// Number of mel bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Number of FFT bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The dense `bands x bins` weight matrix, row-major.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Applies the bank to one power spectrum (`bins` values),
    /// producing `bands` mel energies.
    ///
    /// # Panics
    ///
    /// Panics if `power.len() != bins`.
    pub fn apply(&self, power: &[f32]) -> Vec<f32> {
        assert_eq!(power.len(), self.bins, "spectrum size mismatch");
        (0..self.bands)
            .map(|b| {
                self.weights[b * self.bins..(b + 1) * self.bins]
                    .iter()
                    .zip(power)
                    .map(|(w, p)| w * p)
                    .sum()
            })
            .collect()
    }

    /// Applies the bank to a `frames x bins` spectrogram and takes
    /// `ln(x + eps)`, producing a `frames x bands` log-mel spectrogram.
    pub fn log_mel(&self, power: &[f32], frames: usize) -> Vec<f32> {
        assert_eq!(power.len(), frames * self.bins, "spectrogram size mismatch");
        let mut out = Vec::with_capacity(frames * self.bands);
        for f in 0..frames {
            let row = &power[f * self.bins..(f + 1) * self.bins];
            out.extend(self.apply(row).iter().map(|x| (x + 1e-6).ln()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mel_conversions_invert() {
        for hz in [0.0f32, 100.0, 440.0, 4000.0, 16000.0] {
            let back = mel_to_hz(hz_to_mel(hz));
            assert!((back - hz).abs() < 0.5, "{hz} -> {back}");
        }
    }

    #[test]
    fn mel_scale_is_monotonic() {
        let mut prev = -1.0;
        for i in 0..100 {
            let m = hz_to_mel(i as f32 * 100.0);
            assert!(m > prev);
            prev = m;
        }
    }

    #[test]
    fn filters_are_triangular_and_nonnegative() {
        let fb = MelFilterbank::new(26, 257, 16000.0);
        for w in fb.weights() {
            assert!((0.0..=1.0).contains(w));
        }
        // Every band has some nonzero weight.
        for b in 0..fb.bands() {
            let sum: f32 = fb.weights()[b * fb.bins()..(b + 1) * fb.bins()]
                .iter()
                .sum();
            assert!(sum > 0.0, "band {b} is empty");
        }
    }

    #[test]
    fn apply_flat_spectrum_gives_filter_areas() {
        let fb = MelFilterbank::new(8, 65, 8000.0);
        let flat = vec![1.0f32; 65];
        let out = fb.apply(&flat);
        for (b, v) in out.iter().enumerate() {
            let area: f32 = fb.weights()[b * 65..(b + 1) * 65].iter().sum();
            assert!((v - area).abs() < 1e-4);
        }
    }

    #[test]
    fn log_mel_shape() {
        let fb = MelFilterbank::new(13, 129, 16000.0);
        let frames = 7;
        let spec = vec![0.5f32; frames * 129];
        let lm = fb.log_mel(&spec, frames);
        assert_eq!(lm.len(), frames * 13);
        assert!(lm.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "spectrum size mismatch")]
    fn apply_checks_size() {
        MelFilterbank::new(8, 65, 8000.0).apply(&[0.0; 64]);
    }
}
