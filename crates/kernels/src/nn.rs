//! Small neural-network forward passes: functional stand-ins for the
//! paper's DNN kernels — object detection (Video Surveillance), the PPO
//! policy (Brain Stimulation), and the BERT NER head (the Fig. 16
//! three-kernel extension).
//!
//! The accelerator latency models live in `dmx-accel`; these give the
//! examples real tensors flowing end to end with deterministic weights.

/// Rectified linear unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Numerically stable softmax.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|x| (x - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// A dense layer `y = relu?(W x + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Vec<f32>, // out x in, row-major
    bias: Vec<f32>,
    inputs: usize,
    relu: bool,
}

impl Dense {
    /// Creates a layer with deterministic pseudo-random weights derived
    /// from `seed` (scaled like Xavier init).
    pub fn seeded(inputs: usize, outputs: usize, relu: bool, seed: u64) -> Dense {
        assert!(inputs > 0 && outputs > 0, "empty layer");
        let scale = (2.0 / (inputs + outputs) as f32).sqrt();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // uniform in [-1, 1)
            (state >> 11) as f32 / (1u64 << 52) as f32 - 1.0
        };
        let weights = (0..inputs * outputs).map(|_| next() * scale).collect();
        let bias = (0..outputs).map(|_| next() * 0.01).collect();
        Dense {
            weights,
            bias,
            inputs,
            relu,
        }
    }

    /// Input dimensionality.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output dimensionality.
    pub fn outputs(&self) -> usize {
        self.bias.len()
    }

    /// Forward pass for one vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != inputs`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.inputs, "input size mismatch");
        (0..self.outputs())
            .map(|o| {
                let dot: f32 = self.weights[o * self.inputs..(o + 1) * self.inputs]
                    .iter()
                    .zip(x)
                    .map(|(w, v)| w * v)
                    .sum();
                let y = dot + self.bias[o];
                if self.relu {
                    relu(y)
                } else {
                    y
                }
            })
            .collect()
    }
}

/// A multi-layer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes (ReLU between layers,
    /// linear output), weights derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn seeded(sizes: &[usize], seed: u64) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Dense::seeded(w[0], w[1], i + 2 < sizes.len(), seed + i as u64))
            .collect();
        Mlp { layers }
    }

    /// Input dimensionality.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Output dimensionality.
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("nonempty").outputs()
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut v = x.to_vec();
        for layer in &self.layers {
            v = layer.forward(&v);
        }
        v
    }

    /// Number of multiply-accumulate operations per forward pass (the
    /// quantity accelerator latency models scale with).
    pub fn macs(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| (l.inputs() * l.outputs()) as u64)
            .sum()
    }
}

/// A detection: grid cell plus confidence (the object-detection
/// stand-in emits one score per cell and thresholds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Cell x index.
    pub cx: usize,
    /// Cell y index.
    pub cy: usize,
    /// Confidence in `[0, 1]`.
    pub score: f32,
}

/// Grid-based object detector stand-in: splits a `width x height` luma
/// plane into `grid x grid` cells, featurizes each cell (mean, max,
/// edge energy), and scores it with an MLP. Returns cells above
/// `threshold`.
#[derive(Debug, Clone)]
pub struct GridDetector {
    mlp: Mlp,
    grid: usize,
}

impl GridDetector {
    /// Creates a detector with a `grid x grid` output map.
    pub fn new(grid: usize, seed: u64) -> GridDetector {
        assert!(grid > 0, "grid must be nonzero");
        GridDetector {
            mlp: Mlp::seeded(&[3, 16, 1], seed),
            grid,
        }
    }

    /// Scores every cell of a luma plane (values already normalized to
    /// `[0,1]`), returning detections above `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if the plane size does not match `width * height`.
    pub fn detect(
        &self,
        luma: &[f32],
        width: usize,
        height: usize,
        threshold: f32,
    ) -> Vec<Detection> {
        assert_eq!(luma.len(), width * height, "plane size mismatch");
        let mut out = Vec::new();
        let cw = width / self.grid;
        let ch = height / self.grid;
        if cw == 0 || ch == 0 {
            return out;
        }
        for cy in 0..self.grid {
            for cx in 0..self.grid {
                let mut sum = 0.0f32;
                let mut maxv = 0.0f32;
                let mut edge = 0.0f32;
                for y in 0..ch {
                    for x in 0..cw {
                        let idx = (cy * ch + y) * width + cx * cw + x;
                        let v = luma[idx];
                        sum += v;
                        maxv = maxv.max(v);
                        if x + 1 < cw {
                            edge += (luma[idx + 1] - v).abs();
                        }
                    }
                }
                let n = (cw * ch) as f32;
                let feats = [sum / n, maxv, edge / n];
                let score = 1.0 / (1.0 + (-self.mlp.forward(&feats)[0]).exp());
                if score >= threshold {
                    out.push(Detection { cx, cy, score });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn dense_forward_shape_and_determinism() {
        let a = Dense::seeded(8, 4, true, 42);
        let b = Dense::seeded(8, 4, true, 42);
        let x = vec![0.5; 8];
        assert_eq!(a.forward(&x), b.forward(&x));
        assert_eq!(a.forward(&x).len(), 4);
    }

    #[test]
    fn relu_layers_are_nonnegative() {
        let l = Dense::seeded(16, 16, true, 7);
        let x: Vec<f32> = (0..16).map(|i| i as f32 - 8.0).collect();
        assert!(l.forward(&x).iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn mlp_macs_counts_all_layers() {
        let m = Mlp::seeded(&[10, 20, 5], 1);
        assert_eq!(m.macs(), 10 * 20 + 20 * 5);
        assert_eq!(m.inputs(), 10);
        assert_eq!(m.outputs(), 5);
    }

    #[test]
    fn detector_fires_on_bright_square() {
        let (w, h) = (64, 64);
        let mut plain = vec![0.3f32; w * h];
        let det = GridDetector::new(4, 99);
        let baseline = det.detect(&plain, w, h, 0.0);
        // Paint a bright square in cell (2, 1).
        for y in 16..32 {
            for x in 32..48 {
                plain[y * w + x] = 1.0;
            }
        }
        let after = det.detect(&plain, w, h, 0.0);
        let cell = |ds: &[Detection], cx: usize, cy: usize| {
            ds.iter().find(|d| d.cx == cx && d.cy == cy).unwrap().score
        };
        // That cell's score must move; which direction depends on the
        // seeded weights, so assert a significant change.
        let delta = (cell(&after, 2, 1) - cell(&baseline, 2, 1)).abs();
        assert!(delta > 1e-3, "score did not react: {delta}");
    }

    #[test]
    fn detector_threshold_filters() {
        let det = GridDetector::new(2, 5);
        let plane = vec![0.5f32; 32 * 32];
        let all = det.detect(&plane, 32, 32, 0.0);
        let none = det.detect(&plane, 32, 32, 1.1);
        assert_eq!(all.len(), 4);
        assert!(none.is_empty());
    }
}
