//! Linear support vector machine: the Sound Detection pipeline's
//! second kernel (audio genre classification over log-mel features).
//!
//! Inference is a dense dot product per class; training uses the
//! Pegasos stochastic sub-gradient method, which is plenty to produce a
//! working classifier for the end-to-end examples.

/// A trained multi-class (one-vs-rest) linear SVM.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<f32>, // classes x dims, row-major
    bias: Vec<f32>,
    dims: usize,
}

impl LinearSvm {
    /// Creates an SVM from explicit weights (`classes x dims`) and biases.
    ///
    /// # Panics
    ///
    /// Panics if sizes are inconsistent or empty.
    pub fn from_weights(weights: Vec<f32>, bias: Vec<f32>, dims: usize) -> LinearSvm {
        assert!(dims > 0, "dims must be nonzero");
        assert!(!bias.is_empty(), "at least one class required");
        assert_eq!(weights.len(), bias.len() * dims, "weight matrix shape");
        LinearSvm {
            weights,
            bias,
            dims,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.bias.len()
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Per-class decision values for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dims`.
    pub fn decision(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.dims, "feature size mismatch");
        (0..self.classes())
            .map(|c| {
                self.weights[c * self.dims..(c + 1) * self.dims]
                    .iter()
                    .zip(x)
                    .map(|(w, v)| w * v)
                    .sum::<f32>()
                    + self.bias[c]
            })
            .collect()
    }

    /// Predicted class index.
    pub fn predict(&self, x: &[f32]) -> usize {
        self.decision(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .expect("at least one class")
            .0
    }

    /// Trains a one-vs-rest linear SVM with Pegasos.
    ///
    /// `data` is `n x dims` row-major, `labels` in `0..classes`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes or empty input.
    pub fn train(
        data: &[f32],
        labels: &[usize],
        dims: usize,
        classes: usize,
        epochs: usize,
        lambda: f32,
    ) -> LinearSvm {
        assert!(dims > 0 && classes > 0, "dims and classes must be nonzero");
        let n = labels.len();
        assert!(n > 0, "empty training set");
        assert_eq!(data.len(), n * dims, "data shape mismatch");
        let mut weights = vec![0.0f32; classes * dims];
        let mut bias = vec![0.0f32; classes];
        let mut t: f32 = 1.0;
        // Deterministic sweep order is fine for Pegasos on small sets.
        for _ in 0..epochs {
            for (i, &label) in labels.iter().enumerate() {
                let x = &data[i * dims..(i + 1) * dims];
                for c in 0..classes {
                    let y = if label == c { 1.0f32 } else { -1.0 };
                    let w = &mut weights[c * dims..(c + 1) * dims];
                    let margin: f32 = w.iter().zip(x).map(|(w, v)| w * v).sum::<f32>() + bias[c];
                    let eta = 1.0 / (lambda * t);
                    let shrink = 1.0 - eta * lambda;
                    for wv in w.iter_mut() {
                        *wv *= shrink;
                    }
                    if y * margin < 1.0 {
                        for (wv, xv) in w.iter_mut().zip(x) {
                            *wv += eta * y * xv;
                        }
                        bias[c] += eta * y;
                    }
                    t += 1.0;
                }
            }
        }
        LinearSvm {
            weights,
            bias,
            dims,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 2-D blobs.
    fn blobs() -> (Vec<f32>, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let j = (i % 10) as f32 * 0.1;
            data.extend([2.0 + j, 2.0 - j]);
            labels.push(0);
            data.extend([-2.0 - j, -2.0 + j]);
            labels.push(1);
        }
        (data, labels)
    }

    #[test]
    fn trains_separable_blobs() {
        let (data, labels) = blobs();
        let svm = LinearSvm::train(&data, &labels, 2, 2, 20, 0.01);
        let correct = labels
            .iter()
            .enumerate()
            .filter(|(i, &l)| svm.predict(&data[i * 2..(i + 1) * 2]) == l)
            .count();
        assert_eq!(correct, labels.len(), "separable data must classify fully");
    }

    #[test]
    fn decision_is_linear() {
        let svm = LinearSvm::from_weights(vec![1.0, -2.0], vec![0.5], 2);
        let d = svm.decision(&[3.0, 1.0]);
        assert_eq!(d, vec![3.0 - 2.0 + 0.5]);
    }

    #[test]
    fn predict_picks_argmax() {
        let svm = LinearSvm::from_weights(vec![1.0, 0.0, 0.0, 1.0], vec![0.0, 0.0], 2);
        assert_eq!(svm.predict(&[5.0, 1.0]), 0);
        assert_eq!(svm.predict(&[1.0, 5.0]), 1);
    }

    #[test]
    fn three_class_one_vs_rest() {
        // Three blobs at 120-degree separation.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        let centers = [(3.0f32, 0.0f32), (-1.5, 2.6), (-1.5, -2.6)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..30 {
                let d = (i % 5) as f32 * 0.05;
                data.extend([cx + d, cy - d]);
                labels.push(c);
            }
        }
        let svm = LinearSvm::train(&data, &labels, 2, 3, 50, 0.1);
        let correct = labels
            .iter()
            .enumerate()
            .filter(|(i, &l)| svm.predict(&data[i * 2..(i + 1) * 2]) == l)
            .count();
        assert!(correct as f32 / labels.len() as f32 > 0.95);
    }

    #[test]
    #[should_panic(expected = "feature size mismatch")]
    fn decision_validates_dims() {
        LinearSvm::from_weights(vec![1.0, 0.0], vec![0.0], 2).decision(&[1.0]);
    }
}
