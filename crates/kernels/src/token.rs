//! Byte-level tokenization: the restructuring step between the
//! Personal Information Redaction text kernels and the BERT NER kernel
//! (Fig. 16's "reshaping and typecasting" plus vocabulary lookup).

/// Special token ids.
pub mod special {
    /// Padding.
    pub const PAD: u32 = 0;
    /// Start of sequence.
    pub const CLS: u32 = 1;
    /// End of sequence.
    pub const SEP: u32 = 2;
    /// First byte-token id; byte `b` maps to `BYTE_BASE + b`.
    pub const BYTE_BASE: u32 = 3;
}

/// Size of the byte-level vocabulary (specials + 256 bytes).
pub const VOCAB_SIZE: u32 = special::BYTE_BASE + 256;

/// The 256-entry byte→token lookup table (resident DRX gather table).
pub fn byte_lut() -> Vec<u32> {
    (0..256u32).map(|b| special::BYTE_BASE + b).collect()
}

/// Tokenizes text into fixed-length sequences of `seq_len` ids:
/// `[CLS] byte-tokens [SEP] [PAD]...`, splitting long inputs across
/// multiple sequences. Returns a `n_seqs x seq_len` row-major tensor.
///
/// # Panics
///
/// Panics if `seq_len < 3` (no room for content).
pub fn tokenize(text: &[u8], seq_len: usize) -> Vec<u32> {
    assert!(seq_len >= 3, "sequence too short");
    let payload = seq_len - 2;
    let n_seqs = text.len().div_ceil(payload).max(1);
    let mut out = Vec::with_capacity(n_seqs * seq_len);
    for chunk in text.chunks(payload) {
        out.push(special::CLS);
        out.extend(chunk.iter().map(|&b| special::BYTE_BASE + b as u32));
        out.push(special::SEP);
        out.resize(out.len() + (payload - chunk.len()), special::PAD);
    }
    if text.is_empty() {
        out.push(special::CLS);
        out.push(special::SEP);
        out.resize(seq_len, special::PAD);
    }
    out
}

/// Inverse of [`tokenize`]: recovers the text bytes (dropping specials).
pub fn detokenize(tokens: &[u32]) -> Vec<u8> {
    tokens
        .iter()
        .filter(|&&t| (special::BYTE_BASE..VOCAB_SIZE).contains(&t))
        .map(|&t| (t - special::BYTE_BASE) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_text() {
        let text = b"hello, tokenizer!";
        let toks = tokenize(text, 32);
        assert_eq!(detokenize(&toks), text);
    }

    #[test]
    fn pads_to_fixed_length() {
        let toks = tokenize(b"ab", 8);
        assert_eq!(toks.len(), 8);
        assert_eq!(toks[0], special::CLS);
        assert_eq!(toks[3], special::SEP);
        assert!(toks[4..].iter().all(|&t| t == special::PAD));
    }

    #[test]
    fn splits_long_text() {
        let text = vec![b'x'; 100];
        let toks = tokenize(&text, 16); // 14 payload bytes per seq
        let seqs = toks.len() / 16;
        assert_eq!(seqs, 100usize.div_ceil(14));
        assert_eq!(detokenize(&toks).len(), 100);
    }

    #[test]
    fn empty_text_yields_one_padded_sequence() {
        let toks = tokenize(b"", 8);
        assert_eq!(toks.len(), 8);
        assert_eq!(toks[0], special::CLS);
        assert_eq!(toks[1], special::SEP);
    }

    #[test]
    fn lut_covers_all_bytes() {
        let lut = byte_lut();
        assert_eq!(lut.len(), 256);
        assert_eq!(lut[0], special::BYTE_BASE);
        assert_eq!(lut[255], special::BYTE_BASE + 255);
    }
}
