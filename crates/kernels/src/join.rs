//! Hash join: the Database Hash Join pipeline's second kernel.
//!
//! Classic build/probe equi-join on `u64` keys with fixed-size row
//! payloads, plus the radix partitioning helper that the data
//! restructuring step uses to split rows across join units.

/// A table row: a join key plus an opaque payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Join key.
    pub key: u64,
    /// Payload carried through the join.
    pub payload: u64,
}

/// Multiplicative hash (Fibonacci hashing); also the function the
/// restructuring step computes on the DRX when partitioning.
pub fn hash_key(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Partition index for `key` among `1 << radix_bits` partitions.
pub fn partition_of(key: u64, radix_bits: u32) -> usize {
    (hash_key(key) >> (64 - radix_bits)) as usize
}

/// Splits rows into `1 << radix_bits` partitions by key hash.
///
/// # Panics
///
/// Panics if `radix_bits` is 0 or > 16.
pub fn radix_partition(rows: &[Row], radix_bits: u32) -> Vec<Vec<Row>> {
    assert!((1..=16).contains(&radix_bits), "radix_bits in 1..=16");
    let mut parts = vec![Vec::new(); 1 << radix_bits];
    for row in rows {
        parts[partition_of(row.key, radix_bits)].push(*row);
    }
    parts
}

/// A build-side hash table: open addressing, linear probing.
#[derive(Debug, Clone)]
pub struct HashTable {
    slots: Vec<Option<Row>>,
    mask: usize,
    len: usize,
}

impl HashTable {
    /// Builds a table from the build-side rows.
    pub fn build(rows: &[Row]) -> HashTable {
        let cap = (rows.len() * 2).next_power_of_two().max(8);
        let mut t = HashTable {
            slots: vec![None; cap],
            mask: cap - 1,
            len: 0,
        };
        for row in rows {
            t.insert(*row);
        }
        t
    }

    fn insert(&mut self, row: Row) {
        let mut i = (hash_key(row.key) as usize) & self.mask;
        loop {
            match self.slots[i] {
                None => {
                    self.slots[i] = Some(row);
                    self.len += 1;
                    return;
                }
                Some(_) => i = (i + 1) & self.mask,
            }
        }
    }

    /// Number of build rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All build rows matching `key` (duplicates included).
    pub fn probe(&self, key: u64) -> Vec<Row> {
        let mut out = Vec::new();
        let mut i = (hash_key(key) as usize) & self.mask;
        loop {
            match self.slots[i] {
                None => return out,
                Some(r) => {
                    if r.key == key {
                        out.push(r);
                    }
                    i = (i + 1) & self.mask;
                }
            }
        }
    }
}

/// One joined output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Joined {
    /// The shared key.
    pub key: u64,
    /// Build-side payload.
    pub left: u64,
    /// Probe-side payload.
    pub right: u64,
}

/// Hash-joins `build` and `probe` on key equality.
pub fn hash_join(build: &[Row], probe: &[Row]) -> Vec<Joined> {
    let table = HashTable::build(build);
    let mut out = Vec::new();
    for p in probe {
        for b in table.probe(p.key) {
            out.push(Joined {
                key: p.key,
                left: b.payload,
                right: p.payload,
            });
        }
    }
    out
}

/// Partitioned hash join: partitions both sides, joins partition-wise.
/// Produces the same multiset of rows as [`hash_join`]; this is the
/// multi-join-unit layout the DMX restructuring step feeds.
pub fn partitioned_hash_join(build: &[Row], probe: &[Row], radix_bits: u32) -> Vec<Joined> {
    let bp = radix_partition(build, radix_bits);
    let pp = radix_partition(probe, radix_bits);
    let mut out = Vec::new();
    for (b, p) in bp.iter().zip(&pp) {
        out.extend(hash_join(b, p));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(keys: &[u64]) -> Vec<Row> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| Row {
                key: k,
                payload: 100 + i as u64,
            })
            .collect()
    }

    #[test]
    fn simple_join() {
        let build = rows(&[1, 2, 3]);
        let probe = rows(&[2, 3, 4]);
        let mut j = hash_join(&build, &probe);
        j.sort_by_key(|r| r.key);
        assert_eq!(j.len(), 2);
        assert_eq!(j[0].key, 2);
        assert_eq!(j[1].key, 3);
    }

    #[test]
    fn duplicate_keys_produce_cross_product() {
        let build = rows(&[5, 5]);
        let probe = rows(&[5, 5, 5]);
        let j = hash_join(&build, &probe);
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn empty_sides() {
        assert!(hash_join(&[], &rows(&[1])).is_empty());
        assert!(hash_join(&rows(&[1]), &[]).is_empty());
        assert!(HashTable::build(&[]).is_empty());
    }

    #[test]
    fn partitioning_is_complete_and_disjoint() {
        let data = rows(&(0..1000u64).collect::<Vec<_>>());
        let parts = radix_partition(&data, 4);
        assert_eq!(parts.len(), 16);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        // Every row landed in the partition its key hashes to.
        for (pi, part) in parts.iter().enumerate() {
            for row in part {
                assert_eq!(partition_of(row.key, 4), pi);
            }
        }
    }

    #[test]
    fn partitioned_join_matches_plain_join() {
        let build = rows(&(0..500u64).map(|i| i % 97).collect::<Vec<_>>());
        let probe = rows(&(0..800u64).map(|i| i % 131).collect::<Vec<_>>());
        let mut a = hash_join(&build, &probe);
        let mut b = partitioned_hash_join(&build, &probe, 4);
        let key = |r: &Joined| (r.key, r.left, r.right);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn probe_returns_only_matching_keys() {
        let t = HashTable::build(&rows(&[10, 20, 30, 10]));
        assert_eq!(t.probe(10).len(), 2);
        assert_eq!(t.probe(20).len(), 1);
        assert!(t.probe(99).is_empty());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn hash_spreads_keys() {
        // Adjacent keys should land in different high bits.
        let mut buckets = [0u32; 16];
        for k in 0..1600u64 {
            buckets[partition_of(k, 4)] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!(*b > 50, "bucket {i} starved: {b}");
        }
    }
}
