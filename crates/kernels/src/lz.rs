//! LZ77-style compression: the Database Hash Join pipeline's
//! decompression kernel (the paper uses a Gzip accelerator from the
//! Vitis library; this is an equivalent window-based LZ codec).
//!
//! Format: a stream of tokens. `0x00 len  bytes...` is a literal run;
//! `0x01 len dist_lo dist_hi` is a back-reference of `len` bytes at
//! `dist` before the current output position. Lengths are 1..=255,
//! distances 1..=65535.

use std::collections::HashMap;
use std::fmt;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255;
const MAX_DIST: usize = 65_535;

/// Compresses `input`. The output always round-trips through
/// [`decompress`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Hash chains keyed on 4-byte prefixes.
    let mut table: HashMap<u32, Vec<usize>> = HashMap::new();
    let key = |i: usize| -> u32 {
        u32::from_le_bytes([input[i], input[i + 1], input[i + 2], input[i + 3]])
    };
    let mut literals: Vec<u8> = Vec::new();
    let flush_literals = |out: &mut Vec<u8>, lits: &mut Vec<u8>| {
        for chunk in lits.chunks(255) {
            out.push(0x00);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
        lits.clear();
    };
    let mut i = 0;
    while i < input.len() {
        let mut best: Option<(usize, usize)> = None; // (dist, len)
        if i + MIN_MATCH <= input.len() {
            if let Some(cands) = table.get(&key(i)) {
                for &c in cands.iter().rev().take(16) {
                    let dist = i - c;
                    if dist > MAX_DIST {
                        break;
                    }
                    let mut len = 0;
                    while i + len < input.len()
                        && len < MAX_MATCH
                        && input[c + len] == input[i + len]
                    {
                        len += 1;
                    }
                    if len >= MIN_MATCH && best.is_none_or(|(_, bl)| len > bl) {
                        best = Some((dist, len));
                    }
                }
            }
        }
        match best {
            Some((dist, len)) => {
                flush_literals(&mut out, &mut literals);
                out.push(0x01);
                out.push(len as u8);
                out.extend_from_slice(&(dist as u16).to_le_bytes());
                for j in i..(i + len).min(input.len().saturating_sub(MIN_MATCH - 1)) {
                    table.entry(key(j)).or_default().push(j);
                }
                i += len;
            }
            None => {
                literals.push(input[i]);
                if i + MIN_MATCH <= input.len() {
                    table.entry(key(i)).or_default().push(i);
                }
                i += 1;
            }
        }
    }
    flush_literals(&mut out, &mut literals);
    out
}

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzError {
    /// Stream ended inside a token.
    Truncated,
    /// A back-reference pointed before the start of the output.
    BadDistance {
        /// Output position at the bad reference.
        at: usize,
    },
    /// Unknown token tag.
    BadTag(u8),
}

impl fmt::Display for LzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LzError::Truncated => write!(f, "compressed stream is truncated"),
            LzError::BadDistance { at } => write!(f, "invalid back-reference at output {at}"),
            LzError::BadTag(t) => write!(f, "unknown token tag {t:#x}"),
        }
    }
}

impl std::error::Error for LzError {}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
///
/// Returns an [`LzError`] for malformed streams.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, LzError> {
    let mut out = Vec::with_capacity(input.len() * 3);
    let mut i = 0;
    while i < input.len() {
        let tag = input[i];
        match tag {
            0x00 => {
                if i + 2 > input.len() {
                    return Err(LzError::Truncated);
                }
                let len = input[i + 1] as usize;
                if i + 2 + len > input.len() {
                    return Err(LzError::Truncated);
                }
                out.extend_from_slice(&input[i + 2..i + 2 + len]);
                i += 2 + len;
            }
            0x01 => {
                if i + 4 > input.len() {
                    return Err(LzError::Truncated);
                }
                let len = input[i + 1] as usize;
                let dist = u16::from_le_bytes([input[i + 2], input[i + 3]]) as usize;
                if dist == 0 || dist > out.len() {
                    return Err(LzError::BadDistance { at: out.len() });
                }
                // Byte-at-a-time copy allows overlapping references
                // (run-length encoding via dist < len).
                let start = out.len() - dist;
                for j in 0..len {
                    let b = out[start + j];
                    out.push(b);
                }
                i += 4;
            }
            other => return Err(LzError::BadTag(other)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("valid stream");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<u8> = b"the quick brown fox "
            .iter()
            .cycle()
            .take(10_000)
            .copied()
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_round_trips() {
        // A simple LCG produces byte soup.
        let mut x = 123456789u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn overlapping_reference_rle() {
        let data = vec![7u8; 1000];
        let c = compress(&data);
        assert!(c.len() < 40);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn structured_table_data() {
        // CSV-like rows, the shape of the database benchmark input.
        let mut data = Vec::new();
        for i in 0..500 {
            data.extend_from_slice(format!("row,{},value,{}\n", i, i * 31 % 97).as_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        assert_eq!(decompress(&[0x00]), Err(LzError::Truncated));
        assert_eq!(decompress(&[0x00, 5, 1, 2]), Err(LzError::Truncated));
        assert_eq!(decompress(&[0x01, 4]), Err(LzError::Truncated));
        assert_eq!(
            decompress(&[0x01, 4, 1, 0]),
            Err(LzError::BadDistance { at: 0 })
        );
        assert_eq!(decompress(&[0x42]), Err(LzError::BadTag(0x42)));
    }
}
