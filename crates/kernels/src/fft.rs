//! Radix-2 FFT and short-time Fourier transform (the Sound Detection
//! and Brain Stimulation pipelines' first kernel).

use std::f32::consts::PI;

/// A complex number in single precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f32, im: f32) -> Complex {
        Complex { re, im }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f32 {
        self.norm_sq().sqrt()
    }

    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f32;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2].mul(w);
                data[i + j] = u.add(v);
                data[i + j + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Inverse FFT, in place: recovers the time-domain signal from a full
/// complex spectrum (conjugate → forward FFT → conjugate → scale).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "IFFT length must be a power of two");
    for c in data.iter_mut() {
        c.im = -c.im;
    }
    fft_in_place(data);
    let scale = 1.0 / n as f32;
    for c in data.iter_mut() {
        c.re *= scale;
        c.im = -c.im * scale;
    }
}

/// FFT of a real signal, returning the full complex spectrum.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_real(signal: &[f32]) -> Vec<Complex> {
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft_in_place(&mut buf);
    buf
}

/// Hann window of length `n`.
pub fn hann_window(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| 0.5 * (1.0 - (2.0 * PI * i as f32 / n as f32).cos()))
        .collect()
}

/// Short-time Fourier transform: windows of `frame` samples every `hop`
/// samples, Hann-windowed, one FFT per frame. Returns `frames x (frame/2+1)`
/// one-sided complex spectra, flattened row-major.
///
/// This is exactly the output format the Sound Detection restructuring
/// step converts into a mel spectrogram.
///
/// # Panics
///
/// Panics if `frame` is not a power of two or `hop` is zero.
pub fn stft(signal: &[f32], frame: usize, hop: usize) -> (Vec<Complex>, usize, usize) {
    assert!(frame.is_power_of_two(), "frame must be a power of two");
    assert!(hop > 0, "hop must be positive");
    let window = hann_window(frame);
    let bins = frame / 2 + 1;
    let n_frames = if signal.len() < frame {
        0
    } else {
        (signal.len() - frame) / hop + 1
    };
    let mut out = Vec::with_capacity(n_frames * bins);
    let mut buf = vec![Complex::default(); frame];
    for f in 0..n_frames {
        let start = f * hop;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = Complex::new(signal[start + i] * window[i], 0.0);
        }
        fft_in_place(&mut buf);
        out.extend_from_slice(&buf[..bins]);
    }
    (out, n_frames, bins)
}

/// Naive O(n²) DFT used as a test oracle.
pub fn dft_naive(signal: &[f32]) -> Vec<Complex> {
    let n = signal.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (t, &x) in signal.iter().enumerate() {
                let ang = -2.0 * PI * (k * t) as f32 / n as f32;
                acc = acc.add(Complex::new(x * ang.cos(), x * ang.sin()));
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut signal = vec![0.0f32; 64];
        signal[0] = 1.0;
        let spec = fft_real(&signal);
        for c in &spec {
            assert!((c.re - 1.0).abs() < 1e-5);
            assert!(c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn matches_naive_dft() {
        let signal: Vec<f32> = (0..32).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let fast = fft_real(&signal);
        let slow = dft_naive(&signal);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.re - b.re).abs() < 1e-3, "{} vs {}", a.re, b.re);
            assert!((a.im - b.im).abs() < 1e-3);
        }
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        let n = 256;
        let k = 19;
        let signal: Vec<f32> = (0..n)
            .map(|i| (2.0 * PI * k as f32 * i as f32 / n as f32).sin())
            .collect();
        let spec = fft_real(&signal);
        let mags: Vec<f32> = spec.iter().take(n / 2).map(|c| c.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k);
    }

    #[test]
    fn parseval_energy_conserved() {
        let signal: Vec<f32> = (0..128).map(|i| (i as f32 * 0.37).sin()).collect();
        let time_energy: f32 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal);
        let freq_energy: f32 = spec.iter().map(|c| c.norm_sq()).sum::<f32>() / 128.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    fn ifft_inverts_fft() {
        let signal: Vec<f32> = (0..128).map(|i| ((i * 13) % 29) as f32 - 14.0).collect();
        let mut spec = fft_real(&signal);
        ifft_in_place(&mut spec);
        for (c, &x) in spec.iter().zip(&signal) {
            assert!((c.re - x).abs() < 1e-3, "{} vs {}", c.re, x);
            assert!(c.im.abs() < 1e-3);
        }
    }

    #[test]
    fn ifft_of_flat_spectrum_is_impulse() {
        let mut spec = vec![Complex::new(1.0, 0.0); 64];
        ifft_in_place(&mut spec);
        assert!((spec[0].re - 1.0).abs() < 1e-5);
        for c in &spec[1..] {
            assert!(c.re.abs() < 1e-5);
        }
    }

    #[test]
    fn stft_shape() {
        let signal = vec![0.5f32; 1024];
        let (out, frames, bins) = stft(&signal, 256, 128);
        assert_eq!(bins, 129);
        assert_eq!(frames, (1024 - 256) / 128 + 1);
        assert_eq!(out.len(), frames * bins);
    }

    #[test]
    fn stft_short_signal_is_empty() {
        let (out, frames, _) = stft(&[0.0; 10], 64, 32);
        assert_eq!(frames, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn hann_window_periodic_symmetry_and_bounds() {
        let w = hann_window(128);
        // Periodic Hann: w[i] == w[n - i] for 1 <= i < n.
        for i in 1..128 {
            assert!((w[i] - w[128 - i]).abs() < 1e-5, "i={i}");
        }
        for v in &w {
            assert!((0.0..=1.0).contains(v));
        }
        assert!(w[0].abs() < 1e-6);
        assert!((w[64] - 1.0).abs() < 1e-6);
    }
}
