//! FNV-1a-64 rolling checksum: the integrity layer's chain-boundary
//! check.
//!
//! Every DSA hop (and the driver, for the end-to-end mode) folds the
//! batch it forwards into one of these; a mismatch against the
//! upstream digest means a silent bit flip happened somewhere in
//! between. FNV-1a is not cryptographic — it models the cheap
//! streaming CRC/checksum block a production DMA engine would bolt
//! onto its datapath: one multiply and one xor per byte, incremental,
//! order-sensitive, and guaranteed to change under any single-bit
//! flip (the xor folds the flipped byte in before the avalanching
//! multiply).

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot digest of a byte buffer.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut c = Checksum::new();
    c.update(bytes);
    c.digest()
}

/// An incremental FNV-1a-64 checksum, for digesting a batch as it
/// streams through a boundary chunk by chunk.
///
/// ```
/// use dmx_kernels::checksum::{fnv1a, Checksum};
/// let mut c = Checksum::new();
/// c.update(b"hello ");
/// c.update(b"world");
/// assert_eq!(c.digest(), fnv1a(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum {
    state: u64,
}

impl Checksum {
    /// Starts a fresh digest.
    pub fn new() -> Self {
        Checksum { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// The digest over everything folded in so far.
    pub fn digest(&self) -> u64 {
        self.state
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

/// Applies injected silent bit flips to a payload in place: each
/// `(offset, bit)` pair XORs one bit. Offsets at or past the buffer
/// end are ignored (the fault plan draws against the staged buffer
/// size, which can exceed a short final batch).
pub fn apply_bit_flips(bytes: &mut [u8], flips: impl IntoIterator<Item = (u64, u8)>) {
    for (offset, bit) in flips {
        if let Some(b) = bytes.get_mut(offset as usize) {
            *b ^= 1 << (bit & 7);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 37) as u8).collect();
        let mut c = Checksum::new();
        for chunk in data.chunks(97) {
            c.update(chunk);
        }
        assert_eq!(c.digest(), fnv1a(&data));
    }

    #[test]
    fn any_single_bit_flip_changes_digest() {
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let clean = fnv1a(&data);
        for offset in [0u64, 1, 128, 255] {
            for bit in 0..8u8 {
                let mut flipped = data.clone();
                apply_bit_flips(&mut flipped, [(offset, bit)]);
                assert_ne!(fnv1a(&flipped), clean, "flip at {offset}:{bit}");
                // Flipping twice restores the payload and the digest.
                apply_bit_flips(&mut flipped, [(offset, bit)]);
                assert_eq!(fnv1a(&flipped), clean);
            }
        }
    }

    #[test]
    fn out_of_range_flips_are_ignored() {
        let mut data = vec![0u8; 16];
        apply_bit_flips(&mut data, [(16, 0), (1 << 40, 7)]);
        assert_eq!(data, vec![0u8; 16]);
    }
}
