//! Thompson-NFA regular expression engine: the Personal Information
//! Redaction pipeline's scanning kernel.
//!
//! Supports the subset PII patterns need: literals, `.`, character
//! classes `[a-z0-9]` (with ranges and negation), `*`, `+`, `?`,
//! alternation `|`, grouping `(...)`, and `\d \w \s` escapes. Matching
//! is a breadth-first NFA simulation (no backtracking), linear in input
//! size — the same streaming behaviour an FPGA regex accelerator has.

use std::fmt;

/// Regex compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte position in the pattern.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for RegexError {}

#[derive(Debug, Clone)]
enum ClassItem {
    Byte(u8),
    Range(u8, u8),
}

#[derive(Debug, Clone)]
enum Node {
    /// Matches one byte if the predicate holds.
    Byte {
        items: Vec<ClassItem>,
        negated: bool,
        next: usize,
    },
    /// Matches any byte.
    Any { next: usize },
    /// Epsilon split.
    Split { a: usize, b: usize },
    /// Plain epsilon transition (a single dangling exit).
    Eps { next: usize },
    /// Accept state.
    Accept,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    nodes: Vec<Node>,
    start: usize,
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    pat: &'a [u8],
    pos: usize,
    nodes: Vec<Node>,
}

/// A fragment: entry state plus the dangling exits to patch.
#[derive(Debug, Clone)]
struct Frag {
    start: usize,
    outs: Vec<usize>, // node indices whose `next`/split targets dangle
}

const DANGLE: usize = usize::MAX;

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, RegexError> {
        Err(RegexError {
            pos: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn push(&mut self, n: Node) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    fn patch(&mut self, outs: &[usize], target: usize) {
        for &o in outs {
            match &mut self.nodes[o] {
                Node::Byte { next, .. } | Node::Any { next } => {
                    if *next == DANGLE {
                        *next = target;
                    }
                }
                Node::Split { a, b } => {
                    if *a == DANGLE {
                        *a = target;
                    } else if *b == DANGLE {
                        *b = target;
                    }
                }
                Node::Eps { next } => {
                    if *next == DANGLE {
                        *next = target;
                    }
                }
                Node::Accept => {}
            }
        }
    }

    /// alternation := concat ('|' concat)*
    fn alternation(&mut self) -> Result<Frag, RegexError> {
        let mut frag = self.concat()?;
        while self.peek() == Some(b'|') {
            self.bump();
            let rhs = self.concat()?;
            let split = self.push(Node::Split {
                a: frag.start,
                b: rhs.start,
            });
            let mut outs = frag.outs;
            outs.extend(rhs.outs);
            frag = Frag { start: split, outs };
        }
        Ok(frag)
    }

    /// concat := repeat*
    fn concat(&mut self) -> Result<Frag, RegexError> {
        let mut frags: Vec<Frag> = Vec::new();
        while let Some(c) = self.peek() {
            if c == b'|' || c == b')' {
                break;
            }
            frags.push(self.repeat()?);
        }
        match frags.len() {
            0 => {
                // Empty pattern piece: one epsilon with one dangling exit.
                let s = self.push(Node::Eps { next: DANGLE });
                Ok(Frag {
                    start: s,
                    outs: vec![s],
                })
            }
            _ => {
                let mut iter = frags.into_iter();
                let mut acc = iter.next().expect("nonempty");
                for next in iter {
                    self.patch(&acc.outs, next.start);
                    acc = Frag {
                        start: acc.start,
                        outs: next.outs,
                    };
                }
                Ok(acc)
            }
        }
    }

    /// repeat := atom ('*' | '+' | '?')?
    fn repeat(&mut self) -> Result<Frag, RegexError> {
        let atom = self.atom()?;
        match self.peek() {
            Some(b'*') => {
                self.bump();
                let split = self.push(Node::Split {
                    a: atom.start,
                    b: DANGLE,
                });
                self.patch(&atom.outs, split);
                Ok(Frag {
                    start: split,
                    outs: vec![split],
                })
            }
            Some(b'+') => {
                self.bump();
                let split = self.push(Node::Split {
                    a: atom.start,
                    b: DANGLE,
                });
                self.patch(&atom.outs, split);
                Ok(Frag {
                    start: atom.start,
                    outs: vec![split],
                })
            }
            Some(b'?') => {
                self.bump();
                let split = self.push(Node::Split {
                    a: atom.start,
                    b: DANGLE,
                });
                let mut outs = atom.outs;
                outs.push(split);
                Ok(Frag { start: split, outs })
            }
            _ => Ok(atom),
        }
    }

    /// atom := '(' alternation ')' | class | escape | '.' | literal
    fn atom(&mut self) -> Result<Frag, RegexError> {
        match self.bump() {
            None => self.err("unexpected end of pattern"),
            Some(b'(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    return self.err("expected `)`");
                }
                Ok(inner)
            }
            Some(b'[') => {
                let negated = if self.peek() == Some(b'^') {
                    self.bump();
                    true
                } else {
                    false
                };
                let mut items = Vec::new();
                loop {
                    match self.bump() {
                        None => return self.err("unterminated class"),
                        Some(b']') => break,
                        Some(b'\\') => {
                            let e = self.bump().ok_or(RegexError {
                                pos: self.pos,
                                message: "dangling escape".into(),
                            })?;
                            items.extend(escape_items(e));
                        }
                        Some(c) => {
                            if self.peek() == Some(b'-')
                                && self.pat.get(self.pos + 1).is_some_and(|&n| n != b']')
                            {
                                self.bump(); // '-'
                                let hi = self.bump().expect("checked");
                                if hi < c {
                                    return self.err("inverted range");
                                }
                                items.push(ClassItem::Range(c, hi));
                            } else {
                                items.push(ClassItem::Byte(c));
                            }
                        }
                    }
                }
                let n = self.push(Node::Byte {
                    items,
                    negated,
                    next: DANGLE,
                });
                Ok(Frag {
                    start: n,
                    outs: vec![n],
                })
            }
            Some(b'.') => {
                let n = self.push(Node::Any { next: DANGLE });
                Ok(Frag {
                    start: n,
                    outs: vec![n],
                })
            }
            Some(b'\\') => {
                let e = self.bump().ok_or(RegexError {
                    pos: self.pos,
                    message: "dangling escape".into(),
                })?;
                let items = escape_items(e);
                let n = self.push(Node::Byte {
                    items,
                    negated: false,
                    next: DANGLE,
                });
                Ok(Frag {
                    start: n,
                    outs: vec![n],
                })
            }
            Some(c @ (b'*' | b'+' | b'?' | b')')) => {
                self.pos -= 1;
                self.err(format!("unexpected `{}`", c as char))
            }
            Some(c) => {
                let n = self.push(Node::Byte {
                    items: vec![ClassItem::Byte(c)],
                    negated: false,
                    next: DANGLE,
                });
                Ok(Frag {
                    start: n,
                    outs: vec![n],
                })
            }
        }
    }
}

fn escape_items(e: u8) -> Vec<ClassItem> {
    match e {
        b'd' => vec![ClassItem::Range(b'0', b'9')],
        b'w' => vec![
            ClassItem::Range(b'a', b'z'),
            ClassItem::Range(b'A', b'Z'),
            ClassItem::Range(b'0', b'9'),
            ClassItem::Byte(b'_'),
        ],
        b's' => vec![
            ClassItem::Byte(b' '),
            ClassItem::Byte(b'\t'),
            ClassItem::Byte(b'\n'),
            ClassItem::Byte(b'\r'),
        ],
        other => vec![ClassItem::Byte(other)],
    }
}

fn class_matches(items: &[ClassItem], negated: bool, byte: u8) -> bool {
    let hit = items.iter().any(|i| match i {
        ClassItem::Byte(b) => *b == byte,
        ClassItem::Range(lo, hi) => (*lo..=*hi).contains(&byte),
    });
    hit != negated
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns a [`RegexError`] with the offending position.
    ///
    /// ```
    /// use dmx_kernels::regex::Regex;
    /// let re = Regex::new(r"\d\d\d-\d\d-\d\d\d\d").unwrap(); // SSN-ish
    /// assert!(re.find(b"id 123-45-6789 end").is_some());
    /// ```
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let mut p = Parser {
            pat: pattern.as_bytes(),
            pos: 0,
            nodes: Vec::new(),
        };
        let frag = p.alternation()?;
        if p.pos != p.pat.len() {
            return p.err("trailing characters");
        }
        let accept = p.push(Node::Accept);
        p.patch(&frag.outs, accept);
        // Any still-dangling exits (empty alternations) also accept.
        for n in &mut p.nodes {
            match n {
                Node::Byte { next, .. } | Node::Any { next } => {
                    if *next == DANGLE {
                        *next = accept;
                    }
                }
                Node::Split { a, b } => {
                    if *a == DANGLE {
                        *a = accept;
                    }
                    if *b == DANGLE {
                        *b = accept;
                    }
                }
                Node::Eps { next } => {
                    if *next == DANGLE {
                        *next = accept;
                    }
                }
                Node::Accept => {}
            }
        }
        Ok(Regex {
            nodes: p.nodes,
            start: frag.start,
        })
    }

    /// Number of NFA states (complexity measure used by the cost model).
    pub fn states(&self) -> usize {
        self.nodes.len()
    }

    fn add_state(&self, state: usize, set: &mut Vec<usize>, on: &mut [bool]) {
        if on[state] {
            return;
        }
        on[state] = true;
        match self.nodes[state] {
            Node::Split { a, b } => {
                self.add_state(a, set, on);
                self.add_state(b, set, on);
            }
            Node::Eps { next } => self.add_state(next, set, on),
            _ => set.push(state),
        }
    }

    /// Finds the leftmost match starting at each position (first match
    /// wins); returns `(start, end)` byte offsets or `None`.
    pub fn find(&self, haystack: &[u8]) -> Option<(usize, usize)> {
        self.find_at(haystack, 0)
    }

    /// Finds the leftmost match at or after `from`.
    pub fn find_at(&self, haystack: &[u8], from: usize) -> Option<(usize, usize)> {
        for start in from..=haystack.len() {
            if let Some(end) = self.match_end(haystack, start) {
                return Some((start, end));
            }
        }
        None
    }

    /// Longest match anchored at `start`, if any.
    fn match_end(&self, haystack: &[u8], start: usize) -> Option<usize> {
        let mut current: Vec<usize> = Vec::new();
        let mut on = vec![false; self.nodes.len()];
        self.add_state(self.start, &mut current, &mut on);
        let mut best: Option<usize> = None;
        let mut pos = start;
        loop {
            if current
                .iter()
                .any(|&s| matches!(self.nodes[s], Node::Accept))
            {
                best = Some(pos);
            }
            if pos >= haystack.len() || current.is_empty() {
                break;
            }
            let byte = haystack[pos];
            let mut next: Vec<usize> = Vec::new();
            let mut on2 = vec![false; self.nodes.len()];
            for &s in &current {
                match &self.nodes[s] {
                    Node::Byte {
                        items,
                        negated,
                        next: n,
                    } if class_matches(items, *negated, byte) => {
                        self.add_state(*n, &mut next, &mut on2);
                    }
                    Node::Any { next: n } => {
                        self.add_state(*n, &mut next, &mut on2);
                    }
                    _ => {}
                }
            }
            current = next;
            pos += 1;
        }
        best
    }

    /// Replaces every non-overlapping match with `mask` bytes of the
    /// same length (the "redact with blanks" step of Personal Info
    /// Redaction). Returns the redacted text and the match count.
    pub fn redact(&self, text: &[u8], mask: u8) -> (Vec<u8>, usize) {
        let mut out = text.to_vec();
        let mut count = 0;
        let mut pos = 0;
        while let Some((s, e)) = self.find_at(text, pos) {
            if e == s {
                // Zero-length match: avoid an infinite loop.
                pos = s + 1;
                continue;
            }
            for b in &mut out[s..e] {
                *b = mask;
            }
            count += 1;
            pos = e;
        }
        (out, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let re = Regex::new("abc").unwrap();
        assert_eq!(re.find(b"xxabcxx"), Some((2, 5)));
        assert_eq!(re.find(b"xxabx"), None);
    }

    #[test]
    fn classes_and_ranges() {
        let re = Regex::new("[a-c]x[0-9]").unwrap();
        assert!(re.find(b"bx7").is_some());
        assert!(re.find(b"dx7").is_none());
        let neg = Regex::new("[^0-9]").unwrap();
        assert!(neg.find(b"7a").map(|(s, _)| s) == Some(1));
    }

    #[test]
    fn star_plus_question() {
        let re = Regex::new("ab*c").unwrap();
        assert!(re.find(b"ac").is_some());
        assert!(re.find(b"abbbbc").is_some());
        let re = Regex::new("ab+c").unwrap();
        assert!(re.find(b"ac").is_none());
        assert!(re.find(b"abc").is_some());
        let re = Regex::new("ab?c").unwrap();
        assert!(re.find(b"ac").is_some());
        assert!(re.find(b"abc").is_some());
        assert!(re.find(b"abbc").is_none());
    }

    #[test]
    fn alternation_and_groups() {
        let re = Regex::new("(cat|dog)s?").unwrap();
        // longest match: "dogs" at bytes 3..7
        assert_eq!(re.find(b"hotdogs!"), Some((3, 7)));
        assert_eq!(re.find(b"a cat."), Some((2, 5)));
    }

    #[test]
    fn longest_match_at_position() {
        let re = Regex::new("a+").unwrap();
        assert_eq!(re.find(b"baaa"), Some((1, 4)));
    }

    #[test]
    fn ssn_pattern() {
        let re = Regex::new(r"\d\d\d-\d\d-\d\d\d\d").unwrap();
        let (redacted, n) = re.redact(b"ssn: 123-45-6789, other 987-65-4321.", b'#');
        assert_eq!(n, 2);
        assert_eq!(&redacted, b"ssn: ###########, other ###########.");
    }

    #[test]
    fn email_like_pattern() {
        let re = Regex::new(r"\w+@\w+\.\w+").unwrap();
        let (red, n) = re.redact(b"mail bob@example.com now", b'*');
        assert_eq!(n, 1);
        assert_eq!(&red, b"mail *************** now");
    }

    #[test]
    fn dot_matches_anything() {
        let re = Regex::new("a.c").unwrap();
        assert!(re.find(b"a7c").is_some());
        assert!(re.find(b"abc").is_some());
    }

    #[test]
    fn parse_errors_have_positions() {
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("[ab").is_err());
        assert!(Regex::new("*a").is_err());
        let e = Regex::new("a)").unwrap_err();
        assert!(e.to_string().contains("regex error"));
    }

    #[test]
    fn empty_alternative_is_allowed() {
        let re = Regex::new("a(b|)c").unwrap();
        assert!(re.find(b"ac").is_some());
        assert!(re.find(b"abc").is_some());
    }

    #[test]
    fn redaction_preserves_length() {
        let re = Regex::new(r"\d+").unwrap();
        let text = b"a1bb22ccc333".to_vec();
        let (red, n) = re.redact(&text, b'_');
        assert_eq!(n, 3);
        assert_eq!(red.len(), text.len());
        assert_eq!(&red, b"a_bb__ccc___");
    }
}
