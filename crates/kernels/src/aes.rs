//! AES-128 in counter mode: the Personal Information Redaction
//! pipeline's decryption kernel (the paper uses a Vitis AES-GCM
//! accelerator; CTR is the confidentiality core of GCM and exercises
//! the same streaming datapath).
//!
//! This is a straightforward table-free implementation of FIPS-197 for
//! a benign purpose: decrypting the benchmark's own synthetic inputs.

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// An expanded AES-128 key schedule.
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Aes128 {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let add = |b: &mut [u8; 16], k: &[u8; 16]| {
            for i in 0..16 {
                b[i] ^= k[i];
            }
        };
        let sub_shift = |b: &mut [u8; 16]| {
            for v in b.iter_mut() {
                *v = SBOX[*v as usize];
            }
            // ShiftRows on column-major state layout: row r rotates by r.
            let orig = *b;
            for r in 1..4 {
                for c in 0..4 {
                    b[4 * c + r] = orig[4 * ((c + r) % 4) + r];
                }
            }
        };
        let mix = |b: &mut [u8; 16]| {
            for c in 0..4 {
                let col = [b[4 * c], b[4 * c + 1], b[4 * c + 2], b[4 * c + 3]];
                b[4 * c] = xtime(col[0]) ^ xtime(col[1]) ^ col[1] ^ col[2] ^ col[3];
                b[4 * c + 1] = col[0] ^ xtime(col[1]) ^ xtime(col[2]) ^ col[2] ^ col[3];
                b[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ xtime(col[3]) ^ col[3];
                b[4 * c + 3] = xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ xtime(col[3]);
            }
        };
        add(block, &self.round_keys[0]);
        for r in 1..10 {
            sub_shift(block);
            mix(block);
            add(block, &self.round_keys[r]);
        }
        sub_shift(block);
        add(block, &self.round_keys[10]);
    }

    /// CTR-mode keystream transform: encrypting and decrypting are the
    /// same operation. `nonce` occupies the first 12 bytes of the
    /// counter block; the block counter is big-endian in the last 4.
    pub fn ctr_transform(&self, nonce: &[u8; 12], data: &mut [u8]) {
        let mut counter_block = [0u8; 16];
        counter_block[..12].copy_from_slice(nonce);
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            counter_block[12..].copy_from_slice(&(i as u32).to_be_bytes());
            let mut ks = counter_block;
            self.encrypt_block(&mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(block, expect);
    }

    #[test]
    fn ctr_round_trips() {
        let key = [7u8; 16];
        let nonce = [3u8; 12];
        let aes = Aes128::new(&key);
        let plain: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let mut data = plain.clone();
        aes.ctr_transform(&nonce, &mut data);
        assert_ne!(data, plain, "ciphertext differs from plaintext");
        aes.ctr_transform(&nonce, &mut data);
        assert_eq!(data, plain, "CTR is an involution");
    }

    #[test]
    fn ctr_handles_partial_final_block() {
        let aes = Aes128::new(&[1u8; 16]);
        let mut data = vec![0u8; 17];
        aes.ctr_transform(&[0u8; 12], &mut data);
        let mut back = data.clone();
        aes.ctr_transform(&[0u8; 12], &mut back);
        assert_eq!(back, vec![0u8; 17]);
    }

    #[test]
    fn different_nonces_differ() {
        let aes = Aes128::new(&[9u8; 16]);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        aes.ctr_transform(&[1u8; 12], &mut a);
        aes.ctr_transform(&[2u8; 12], &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_blocks_differ() {
        // Counter increments must change every block.
        let aes = Aes128::new(&[5u8; 16]);
        let mut data = vec![0u8; 48];
        aes.ctr_transform(&[0u8; 12], &mut data);
        assert_ne!(&data[0..16], &data[16..32]);
        assert_ne!(&data[16..32], &data[32..48]);
    }
}
