//! # dmx-kernels — functional domain kernels
//!
//! Real implementations of the application kernels behind the paper's
//! five end-to-end benchmarks (Table I), so the examples and tests run
//! actual data through the accelerator chain rather than opaque byte
//! blobs:
//!
//! | pipeline | kernels here |
//! |---|---|
//! | Sound Detection | [`fft`] (STFT), [`mel`], [`svm`] |
//! | Video Surveillance | [`video`] (codec), [`nn`] (detector) |
//! | Brain Stimulation | [`fft`], [`nn`] (policy MLP) |
//! | Personal Info Redaction | [`aes`] (CTR decrypt), [`regex`], [`token`], [`nn`] (NER stand-in) |
//! | Database Hash Join | [`lz`] (decompress), [`join`] |
//!
//! Cross-cutting: [`checksum`] is the FNV-1a-64 chain-boundary digest
//! the end-to-end integrity layer uses to catch silent corruption.
//!
//! Timing and energy for these kernels on their accelerators is modeled
//! separately in `dmx-accel`; this crate is purely functional.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aes;
pub mod checksum;
pub mod fft;
pub mod join;
pub mod lz;
pub mod mel;
pub mod nn;
pub mod regex;
pub mod svm;
pub mod token;
pub mod video;
