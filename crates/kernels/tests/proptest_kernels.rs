//! Property-based tests of the functional domain kernels.

use dmx_kernels::{aes, fft, join, lz, regex, token, video};
use proptest::prelude::*;

proptest! {
    /// LZ compression round-trips arbitrary byte soup.
    #[test]
    fn lz_round_trips(data in prop::collection::vec(any::<u8>(), 0..20_000)) {
        let c = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&c).expect("valid stream"), data);
    }

    /// LZ decompression never panics on arbitrary (possibly corrupt)
    /// input — it either decodes or returns an error.
    #[test]
    fn lz_decompress_total(garbage in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = lz::decompress(&garbage);
    }

    /// AES-CTR is an involution under any key/nonce.
    #[test]
    fn aes_ctr_involution(
        key in prop::array::uniform16(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let cipher = aes::Aes128::new(&key);
        let mut buf = data.clone();
        cipher.ctr_transform(&nonce, &mut buf);
        cipher.ctr_transform(&nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Parseval's theorem holds for random power-of-two signals.
    #[test]
    fn fft_parseval(
        log_n in 3u32..10,
        seed in any::<u32>(),
    ) {
        let n = 1usize << log_n;
        let mut state = seed | 1;
        let signal: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state as f32 / u32::MAX as f32) - 0.5
            })
            .collect();
        let time_energy: f64 = signal.iter().map(|x| (*x as f64) * (*x as f64)).sum();
        let spec = fft::fft_real(&signal);
        let freq_energy: f64 =
            spec.iter().map(|c| c.norm_sq() as f64).sum::<f64>() / n as f64;
        prop_assert!(
            (time_energy - freq_energy).abs() <= time_energy.max(1e-6) * 1e-3,
            "{time_energy} vs {freq_energy}"
        );
    }

    /// Partitioned hash join produces exactly the same multiset of
    /// rows as the direct join.
    #[test]
    fn partitioned_join_equivalence(
        build_keys in prop::collection::vec(0u64..64, 0..200),
        probe_keys in prop::collection::vec(0u64..64, 0..200),
        radix in 1u32..6,
    ) {
        let rows = |ks: &[u64], base: u64| -> Vec<join::Row> {
            ks.iter()
                .enumerate()
                .map(|(i, &key)| join::Row { key, payload: base + i as u64 })
                .collect()
        };
        let b = rows(&build_keys, 0);
        let p = rows(&probe_keys, 1_000_000);
        let mut plain = join::hash_join(&b, &p);
        let mut parted = join::partitioned_hash_join(&b, &p, radix);
        let key = |r: &join::Joined| (r.key, r.left, r.right);
        plain.sort_by_key(key);
        parted.sort_by_key(key);
        prop_assert_eq!(plain, parted);
    }

    /// Tokenize/detokenize round-trips arbitrary text at any legal
    /// sequence length.
    #[test]
    fn tokenize_round_trips(
        text in prop::collection::vec(any::<u8>(), 0..2000),
        seq_len in 3usize..64,
    ) {
        let toks = token::tokenize(&text, seq_len);
        prop_assert_eq!(token::detokenize(&toks), text.clone());
        prop_assert_eq!(toks.len() % seq_len, 0);
        for t in &toks {
            prop_assert!(*t < token::VOCAB_SIZE);
        }
    }

    /// The video codec round-trips random frame stacks.
    #[test]
    fn video_round_trips(
        w_half in 2usize..12,
        h_half in 2usize..10,
        n in 1usize..5,
        seed in any::<u32>(),
    ) {
        let (w, h) = (w_half * 2, h_half * 2);
        let mut state = seed | 1;
        let mut rand_byte = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            (state >> 8) as u8
        };
        let frames: Vec<video::Frame> = (0..n)
            .map(|_| {
                let mut f = video::Frame::black(w, h);
                for p in f.y.iter_mut().chain(f.u.iter_mut()).chain(f.v.iter_mut()) {
                    *p = rand_byte();
                }
                f
            })
            .collect();
        let enc = video::encode(&frames);
        prop_assert_eq!(video::decode(&enc).expect("valid"), frames);
    }

    /// A literal pattern always matches itself (after escaping the
    /// regex metacharacters out of the alphabet).
    #[test]
    fn regex_literal_self_match(
        needle in "[a-z0-9 ]{1,12}",
        prefix in "[a-z0-9 ]{0,10}",
        suffix in "[a-z0-9 ]{0,10}",
    ) {
        let re = regex::Regex::new(&needle).expect("literal compiles");
        let hay = format!("{prefix}{needle}{suffix}");
        let found = re.find(hay.as_bytes());
        prop_assert!(found.is_some(), "`{needle}` not found in `{hay}`");
        let (s, e) = found.expect("checked");
        prop_assert_eq!(&hay.as_bytes()[s..e], needle.as_bytes());
    }

    /// Redaction output always has the same length as the input and
    /// never contains the (non-empty, literal) pattern afterwards.
    #[test]
    fn regex_redaction_is_complete(
        needle in "[a-z]{2,8}",
        chunks in prop::collection::vec("[a-z ]{0,12}", 0..6),
    ) {
        let re = regex::Regex::new(&needle).expect("compiles");
        let hay = chunks.join(&needle);
        let (red, _count) = re.redact(hay.as_bytes(), b'#');
        prop_assert_eq!(red.len(), hay.len());
        let survived = red
            .windows(needle.len().max(1))
            .any(|w| w == needle.as_bytes());
        prop_assert!(!survived, "`{}` survived in `{}`", needle, String::from_utf8_lossy(&red));
    }
}
