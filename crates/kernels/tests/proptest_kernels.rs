//! Property-based tests of the functional domain kernels, on the
//! in-tree deterministic harness (`dmx_sim::check`).

use dmx_kernels::{aes, fft, join, lz, regex, token, video};
use dmx_sim::{cases, run_cases, Gen};

fn n_cases() -> usize {
    cases(if cfg!(feature = "heavy-tests") {
        512
    } else {
        64
    })
}

/// LZ compression round-trips arbitrary byte soup.
#[test]
fn lz_round_trips() {
    run_cases("kernels::lz_round_trips", n_cases(), |g| {
        let data = g.bytes(0, 20_000);
        let c = lz::compress(&data);
        assert_eq!(lz::decompress(&c).expect("valid stream"), data);
    });
}

/// LZ decompression never panics on arbitrary (possibly corrupt)
/// input — it either decodes or returns an error.
#[test]
fn lz_decompress_total() {
    run_cases("kernels::lz_decompress_total", n_cases(), |g| {
        let garbage = g.bytes(0, 4096);
        let _ = lz::decompress(&garbage);
    });
}

/// AES-CTR is an involution under any key/nonce.
#[test]
fn aes_ctr_involution() {
    run_cases("kernels::aes_ctr_involution", n_cases(), |g| {
        let mut key = [0u8; 16];
        for b in &mut key {
            *b = g.u64_in(0, 256) as u8;
        }
        let mut nonce = [0u8; 12];
        for b in &mut nonce {
            *b = g.u64_in(0, 256) as u8;
        }
        let data = g.bytes(0, 2048);
        let cipher = aes::Aes128::new(&key);
        let mut buf = data.clone();
        cipher.ctr_transform(&nonce, &mut buf);
        cipher.ctr_transform(&nonce, &mut buf);
        assert_eq!(buf, data);
    });
}

/// Parseval's theorem holds for random power-of-two signals.
#[test]
fn fft_parseval() {
    run_cases("kernels::fft_parseval", n_cases(), |g| {
        let log_n = g.u64_in(3, 10) as u32;
        let seed = g.u64_in(0, 1 << 32) as u32;
        let n = 1usize << log_n;
        let mut state = seed | 1;
        let signal: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state as f32 / u32::MAX as f32) - 0.5
            })
            .collect();
        let time_energy: f64 = signal.iter().map(|x| (*x as f64) * (*x as f64)).sum();
        let spec = fft::fft_real(&signal);
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sq() as f64).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() <= time_energy.max(1e-6) * 1e-3,
            "{time_energy} vs {freq_energy}"
        );
    });
}

/// Partitioned hash join produces exactly the same multiset of rows as
/// the direct join.
#[test]
fn partitioned_join_equivalence() {
    run_cases("kernels::partitioned_join_equivalence", n_cases(), |g| {
        let build_keys = g.vec(0, 200, |g| g.u64_in(0, 64));
        let probe_keys = g.vec(0, 200, |g| g.u64_in(0, 64));
        let radix = g.u64_in(1, 6) as u32;
        let rows = |ks: &[u64], base: u64| -> Vec<join::Row> {
            ks.iter()
                .enumerate()
                .map(|(i, &key)| join::Row {
                    key,
                    payload: base + i as u64,
                })
                .collect()
        };
        let b = rows(&build_keys, 0);
        let p = rows(&probe_keys, 1_000_000);
        let mut plain = join::hash_join(&b, &p);
        let mut parted = join::partitioned_hash_join(&b, &p, radix);
        let key = |r: &join::Joined| (r.key, r.left, r.right);
        plain.sort_by_key(key);
        parted.sort_by_key(key);
        assert_eq!(plain, parted);
    });
}

/// Tokenize/detokenize round-trips arbitrary text at any legal
/// sequence length.
#[test]
fn tokenize_round_trips() {
    run_cases("kernels::tokenize_round_trips", n_cases(), |g| {
        let text = g.bytes(0, 2000);
        let seq_len = g.usize_in(3, 64);
        let toks = token::tokenize(&text, seq_len);
        assert_eq!(token::detokenize(&toks), text);
        assert_eq!(toks.len() % seq_len, 0);
        for t in &toks {
            assert!(*t < token::VOCAB_SIZE);
        }
    });
}

/// The video codec round-trips random frame stacks.
#[test]
fn video_round_trips() {
    run_cases("kernels::video_round_trips", n_cases(), |g| {
        let (w, h) = (g.usize_in(2, 12) * 2, g.usize_in(2, 10) * 2);
        let n = g.usize_in(1, 5);
        let frames: Vec<video::Frame> = (0..n)
            .map(|_| {
                let mut f = video::Frame::black(w, h);
                for p in f.y.iter_mut().chain(f.u.iter_mut()).chain(f.v.iter_mut()) {
                    *p = g.u64_in(0, 256) as u8;
                }
                f
            })
            .collect();
        let enc = video::encode(&frames);
        assert_eq!(video::decode(&enc).expect("valid"), frames);
    });
}

/// Lowercase alphanumeric text from the harness alphabet.
fn text(g: &mut Gen, lo: usize, hi: usize, alphabet: &[u8]) -> String {
    let v = g.vec(lo, hi, |g| alphabet[g.usize_in(0, alphabet.len())]);
    String::from_utf8(v).expect("ascii alphabet")
}

/// A literal pattern always matches itself (the alphabet contains no
/// regex metacharacters).
#[test]
fn regex_literal_self_match() {
    const AB: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 ";
    run_cases("kernels::regex_literal_self_match", n_cases(), |g| {
        let needle = text(g, 1, 13, AB);
        let prefix = text(g, 0, 11, AB);
        let suffix = text(g, 0, 11, AB);
        let re = regex::Regex::new(&needle).expect("literal compiles");
        let hay = format!("{prefix}{needle}{suffix}");
        let found = re.find(hay.as_bytes());
        assert!(found.is_some(), "`{needle}` not found in `{hay}`");
        let (s, e) = found.expect("checked");
        assert_eq!(&hay.as_bytes()[s..e], needle.as_bytes());
    });
}

/// Redaction output always has the same length as the input and never
/// contains the (non-empty, literal) pattern afterwards.
#[test]
fn regex_redaction_is_complete() {
    run_cases("kernels::regex_redaction_is_complete", n_cases(), |g| {
        let needle = text(g, 2, 9, b"abcdefghijklmnopqrstuvwxyz");
        let chunks = g.vec(0, 6, |g| {
            let n = g.usize_in(0, 13);
            let mut s = String::new();
            for _ in 0..n {
                s.push(*g.pick(b"abcdefghijklmnopqrstuvwxyz ") as char);
            }
            s
        });
        let re = regex::Regex::new(&needle).expect("compiles");
        let hay = chunks.join(&needle);
        let (red, _count) = re.redact(hay.as_bytes(), b'#');
        assert_eq!(red.len(), hay.len());
        let survived = red
            .windows(needle.len().max(1))
            .any(|w| w == needle.as_bytes());
        assert!(
            !survived,
            "`{}` survived in `{}`",
            needle,
            String::from_utf8_lossy(&red)
        );
    });
}
